// SYNCG (Algorithm 5): incremental synchronization of causal graphs, plus
// the traditional full-graph-transfer baseline.
//
// The sender runs a depth-first search from its sink along reverse arcs,
// streaming each node (with its two parent ids and, in operation-transfer
// systems, its operation payload). When the receiver sees a node it already
// has, it tells the sender to abort the current branch and names the node
// the next branch should start from (taken from a mirror of the sender's DFS
// stack). The result is O(|V_b \ V_a| + |A_b \ A_a|) communication: only the
// missing nodes plus one overlapping node per branch are transmitted.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/cost_model.h"
#include "graph/causal_graph.h"
#include "sim/event_loop.h"
#include "sim/frame_link.h"
#include "sim/link.h"
#include "vv/session.h"  // TransferMode

namespace optrep::graph {

struct GraphMsg {
  enum class Kind : std::uint8_t {
    kNode,    // sender→receiver: node id + parents (+ operation payload)
    kSkipTo,  // receiver→sender: abort branch; next branch starts at `target`
    kJumped,  // sender→receiver: a SKIPTO was honored (O(1) marker letting
              // the receiver distinguish in-flight stragglers from the next
              // branch; the graph analogue of SYNCS's SKIPPED — DESIGN.md)
    kHalt,    // either direction: sender exhausted / receiver has everything
    kAck,     // stop-and-wait flow control (ablation modes)
  };
  Kind kind{Kind::kNode};
  Node node{};        // kNode
  UpdateId target{};  // kSkipTo

  std::string to_string() const;
};

// Sizes under the §3.3-style cost model: a node id costs log n + log m bits.
std::uint64_t graph_msg_model_bits(const CostModel& cm, const GraphMsg& m);
std::uint64_t graph_msg_wire_bytes(const GraphMsg& m);

// Realistic size of a coalesced wire frame (sim::FrameLink): update ids are
// priced as zigzag-varint deltas along the frame (a DFS streams consecutive
// ids, so the common delta is one or two bytes), capped per message at the
// unframed size; operation payloads ride along unchanged when ship_ops.
// Size-only — graph frames are never materialized as bytes.
std::uint64_t graph_frame_wire_bytes(const std::vector<GraphMsg>& msgs, bool ship_ops);
std::uint64_t graph_frame_wire_bytes_single(const GraphMsg& m, bool ship_ops);

struct GraphSyncOptions {
  vv::TransferMode mode{vv::TransferMode::kPipelined};
  sim::NetConfig net{};
  CostModel cost{};
  // Ship operation payloads with nodes (operation transfer) or metadata only
  // (e.g. a pure anti-entropy round).
  bool ship_ops{true};
};

struct GraphSyncReport {
  vv::Ordering initial_relation{vv::Ordering::kEqual};

  std::uint64_t bits_fwd{0};   // sender→receiver, model bits (metadata only)
  std::uint64_t bits_rev{0};
  std::uint64_t bytes_fwd{0};  // realistic encoding incl. operation payloads
  std::uint64_t bytes_rev{0};
  std::uint64_t msgs_fwd{0};
  std::uint64_t msgs_rev{0};

  // Frame batching (sim::FrameLink, opt.net.frame_budget): coalesced wire
  // frames, their delta-varint byte totals, and the event-loop dispatches the
  // sync executed. Model-bit fields above are identical with framing on/off.
  std::uint64_t frames_fwd{0};
  std::uint64_t frames_rev{0};
  std::uint64_t framed_bytes_fwd{0};
  std::uint64_t framed_bytes_rev{0};
  std::uint64_t loop_events{0};

  std::uint64_t nodes_sent{0};       // kNode messages transmitted
  std::uint64_t nodes_new{0};        // |V_b \ V_a| delivered
  std::uint64_t nodes_redundant{0};  // overlap nodes received (≈ one per branch)
  std::uint64_t skipto_msgs{0};
  std::uint64_t op_bytes_shipped{0};
  std::uint64_t ack_msgs{0};
  // Ids of the nodes that were new to the receiver (insertion order); used
  // by hybrid-transfer stores to fetch the matching operation payloads.
  std::vector<UpdateId> new_node_ids;

  sim::Time duration{0};

  std::uint64_t total_bits() const { return bits_fwd + bits_rev; }
};

// SYNCG_b(a): modify graph a to become the union of a and b. The sink is not
// changed (the caller — e.g. the operation-transfer store — decides whether
// to fast-forward to b's sink or to add a reconciliation node).
GraphSyncReport sync_graph(sim::EventLoop& loop, CausalGraph& a, const CausalGraph& b,
                           const GraphSyncOptions& opt);

// Baseline: transmit all of b's nodes; receiver unions.
GraphSyncReport sync_graph_full(sim::EventLoop& loop, CausalGraph& a, const CausalGraph& b,
                                const GraphSyncOptions& opt);

}  // namespace optrep::graph
