// Causal graphs for operation-transfer systems (§6).
//
// A causal graph is a DAG in which each node represents one operation; nodes
// have at most two parents (single-parent = a plain update on the parent
// state, double-parent = a reconciliation merging two concurrent states).
// Each replica's graph is closed under ancestry and has one source (the
// object's creation) and one sink (the latest operation executed on the
// replica, §6). Node lookup is O(1) via hash table, which makes comparison
// O(1) (§6: sink-containment tests).
//
// Nodes are identified by UpdateId (origin site, per-site sequence number),
// which is globally unique and stable across replicas.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "vv/order.h"

namespace optrep::graph {

// UpdateId{} (seq 0) encodes "no parent".
constexpr UpdateId kNoParent{};

struct Node {
  UpdateId id;
  UpdateId lp{kNoParent};  // left parent (single-parent nodes use only lp)
  UpdateId rp{kNoParent};  // right parent (set only for reconciliation nodes)
  // Size of the operation payload this node carries (bytes); used by the
  // benches to separate metadata traffic from operation-data traffic.
  std::uint32_t op_bytes{0};

  bool is_merge() const { return rp != kNoParent; }
  friend bool operator==(const Node&, const Node&) = default;
};

class CausalGraph {
 public:
  CausalGraph() = default;

  bool contains(UpdateId id) const { return nodes_.contains(id); }
  const Node* find(UpdateId id) const {
    auto it = nodes_.find(id);
    return it == nodes_.end() ? nullptr : &it->second;
  }

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t arc_count() const { return arcs_; }
  bool empty() const { return nodes_.empty(); }

  UpdateId source() const { return source_; }
  UpdateId sink() const { return sink_; }

  // ---- replica-level operations -------------------------------------------

  // Record the object-creating operation; the graph must be empty.
  void create(UpdateId op, std::uint32_t op_bytes = 0);

  // Record a local operation on top of the current sink (single parent).
  void append(UpdateId op, std::uint32_t op_bytes = 0);

  // Record a reconciliation operation merging the current sink with another
  // head already present in this graph (double parent). The new node becomes
  // the sink.
  void merge(UpdateId op, UpdateId other_head, std::uint32_t op_bytes = 0);

  // After SYNCG the union may be dominated by the remote sink: adopt it.
  // Requires the node to be present.
  void set_sink(UpdateId id);

  // ---- protocol-level operations ------------------------------------------

  // Insert a node received from a peer. Parents need not be present yet (the
  // SYNCG DFS delivers children before their ancestors); closure holds again
  // once the protocol completes — see validate_closed().
  void insert_raw(const Node& n);

  // ---- queries -------------------------------------------------------------

  // §6 comparison: a replica precedes another iff its sink is contained in
  // the other graph but not vice versa; O(1).
  vv::Ordering compare(const CausalGraph& other) const;

  // True iff `ancestor` is reachable from `descendant` by parent arcs
  // (O(|V|); used by tests and reconciliation logic, not by the protocols).
  bool is_ancestor(UpdateId ancestor, UpdateId descendant) const;

  // Every parent referenced by a node is present, there is exactly one
  // parentless node (the source), and the sink dominates the whole graph.
  bool validate_closed() const;

  // Nodes in unspecified order.
  std::vector<Node> all_nodes() const;

  // Total payload bytes across nodes.
  std::uint64_t total_op_bytes() const { return op_bytes_; }

  bool operator==(const CausalGraph& other) const {
    return nodes_ == other.nodes_;  // same node/arc sets (sinks may differ mid-sync)
  }

 private:
  std::unordered_map<UpdateId, Node> nodes_;
  std::size_t arcs_{0};
  std::uint64_t op_bytes_{0};
  UpdateId source_{kNoParent};
  UpdateId sink_{kNoParent};
};

}  // namespace optrep::graph
