#include "graph/causal_graph.h"

#include <vector>

namespace optrep::graph {

void CausalGraph::create(UpdateId op, std::uint32_t op_bytes) {
  OPTREP_CHECK_MSG(nodes_.empty(), "create() on a non-empty graph");
  OPTREP_CHECK_MSG(op != kNoParent, "operation id must be non-zero");
  insert_raw(Node{op, kNoParent, kNoParent, op_bytes});
  source_ = op;
  sink_ = op;
}

void CausalGraph::append(UpdateId op, std::uint32_t op_bytes) {
  OPTREP_CHECK_MSG(!nodes_.empty(), "append() on an empty graph");
  OPTREP_CHECK_MSG(!contains(op), "duplicate operation id");
  insert_raw(Node{op, sink_, kNoParent, op_bytes});
  sink_ = op;
}

void CausalGraph::merge(UpdateId op, UpdateId other_head, std::uint32_t op_bytes) {
  OPTREP_CHECK_MSG(contains(other_head), "merge head must be present");
  OPTREP_CHECK_MSG(!contains(op), "duplicate operation id");
  OPTREP_CHECK(other_head != sink_);
  insert_raw(Node{op, sink_, other_head, op_bytes});
  sink_ = op;
}

void CausalGraph::set_sink(UpdateId id) {
  OPTREP_CHECK_MSG(contains(id), "sink must be present");
  sink_ = id;
}

void CausalGraph::insert_raw(const Node& n) {
  auto [it, inserted] = nodes_.emplace(n.id, n);
  if (!inserted) {
    OPTREP_CHECK_MSG(it->second == n, "conflicting node contents for one id");
    return;
  }
  arcs_ += (n.lp != kNoParent) + (n.rp != kNoParent);
  op_bytes_ += n.op_bytes;
  if (n.lp == kNoParent && n.rp == kNoParent && source_ == kNoParent) source_ = n.id;
}

vv::Ordering CausalGraph::compare(const CausalGraph& other) const {
  if (empty() && other.empty()) return vv::Ordering::kEqual;
  if (empty()) return vv::Ordering::kBefore;
  if (other.empty()) return vv::Ordering::kAfter;
  const bool mine_in_theirs = other.contains(sink_);
  const bool theirs_in_mine = contains(other.sink_);
  if (mine_in_theirs && theirs_in_mine) return vv::Ordering::kEqual;
  if (mine_in_theirs) return vv::Ordering::kBefore;
  if (theirs_in_mine) return vv::Ordering::kAfter;
  return vv::Ordering::kConcurrent;
}

bool CausalGraph::is_ancestor(UpdateId ancestor, UpdateId descendant) const {
  if (!contains(ancestor) || !contains(descendant)) return false;
  std::vector<UpdateId> stack{descendant};
  std::unordered_map<UpdateId, bool> seen;
  while (!stack.empty()) {
    const UpdateId cur = stack.back();
    stack.pop_back();
    if (cur == ancestor) return true;
    auto [it, inserted] = seen.emplace(cur, true);
    if (!inserted) continue;
    if (const Node* n = find(cur)) {
      if (n->lp != kNoParent) stack.push_back(n->lp);
      if (n->rp != kNoParent) stack.push_back(n->rp);
    }
  }
  return false;
}

bool CausalGraph::validate_closed() const {
  if (nodes_.empty()) return true;
  std::size_t roots = 0;
  for (const auto& [id, n] : nodes_) {
    if (n.lp == kNoParent && n.rp == kNoParent) {
      ++roots;
    }
    if (n.lp != kNoParent && !contains(n.lp)) return false;
    if (n.rp != kNoParent && !contains(n.rp)) return false;
  }
  if (roots != 1) return false;
  if (!contains(sink_)) return false;
  // The sink must dominate the graph: every node is an ancestor of the sink.
  std::size_t reached = 0;
  std::vector<UpdateId> stack{sink_};
  std::unordered_map<UpdateId, bool> seen;
  while (!stack.empty()) {
    const UpdateId cur = stack.back();
    stack.pop_back();
    auto [it, inserted] = seen.emplace(cur, true);
    if (!inserted) continue;
    ++reached;
    const Node* n = find(cur);
    if (n->lp != kNoParent) stack.push_back(n->lp);
    if (n->rp != kNoParent) stack.push_back(n->rp);
  }
  return reached == nodes_.size();
}

std::vector<Node> CausalGraph::all_nodes() const {
  std::vector<Node> out;
  out.reserve(nodes_.size());
  for (const auto& [id, n] : nodes_) out.push_back(n);
  return out;
}

}  // namespace optrep::graph
