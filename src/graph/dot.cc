#include "graph/dot.h"

#include <algorithm>
#include <vector>

namespace optrep::graph {

std::string to_dot(const CausalGraph& g, const std::string& name) {
  std::vector<Node> nodes = g.all_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](const Node& x, const Node& y) { return x.id < y.id; });
  std::string out = "digraph " + name + " {\n  rankdir=TB;\n";
  for (const Node& n : nodes) {
    out += "  \"" + update_name(n.id) + "\"";
    if (n.is_merge()) out += " [style=filled, fillcolor=gray]";
    out += ";\n";
  }
  for (const Node& n : nodes) {
    if (n.lp != kNoParent)
      out += "  \"" + update_name(n.lp) + "\" -> \"" + update_name(n.id) + "\";\n";
    if (n.rp != kNoParent)
      out += "  \"" + update_name(n.rp) + "\" -> \"" + update_name(n.id) + "\";\n";
  }
  out += "}\n";
  return out;
}

}  // namespace optrep::graph
