#include "graph/sync_graph.h"

#include <algorithm>
#include <vector>

namespace optrep::graph {

std::string GraphMsg::to_string() const {
  switch (kind) {
    case Kind::kNode: return "NODE(" + update_name(node.id) + ")";
    case Kind::kSkipTo: return "SKIPTO(" + update_name(target) + ")";
    case Kind::kJumped: return "JUMPED";
    case Kind::kHalt: return "HALT";
    case Kind::kAck: return "ACK";
  }
  return "?";
}

std::uint64_t graph_msg_model_bits(const CostModel& cm, const GraphMsg& m) {
  const std::uint64_t id_bits = cm.site_bits() + cm.value_bits();
  switch (m.kind) {
    case GraphMsg::Kind::kNode:
      // type flag + node id + two optional parent ids (1 presence bit each).
      return 1 + id_bits + 2 * (1 + id_bits);
    case GraphMsg::Kind::kSkipTo: return 1 + id_bits;
    case GraphMsg::Kind::kJumped: return 2;
    case GraphMsg::Kind::kHalt: return 2;
    case GraphMsg::Kind::kAck: return 1;
  }
  return 0;
}

std::uint64_t graph_msg_wire_bytes(const GraphMsg& m) {
  switch (m.kind) {
    case GraphMsg::Kind::kNode: return 1 + 3 * 12;  // tag + 3 × (site+seq)
    case GraphMsg::Kind::kSkipTo: return 1 + 12;
    case GraphMsg::Kind::kJumped: return 1;
    case GraphMsg::Kind::kHalt: return 1;
    case GraphMsg::Kind::kAck: return 1;
  }
  return 0;
}

namespace {

std::uint32_t varint_len(std::uint64_t v) {
  std::uint32_t len = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++len;
  }
  return len;
}

std::uint64_t zigzag(std::int64_t n) {
  return (static_cast<std::uint64_t>(n) << 1) ^ static_cast<std::uint64_t>(n >> 63);
}

// Varint-delta cost of one id against the running chain; advances the chain.
std::uint64_t id_delta_bytes(UpdateId& prev, UpdateId id) {
  const std::uint64_t site_zz = zigzag(static_cast<std::int64_t>(id.site.value) -
                                       static_cast<std::int64_t>(prev.site.value));
  const std::uint64_t seq_zz = zigzag(static_cast<std::int64_t>(id.seq - prev.seq));
  prev = id;
  return varint_len(site_zz) + varint_len(seq_zz);
}

// Framed size of one message; `prev` is the cross-message delta base (the id
// of the last node or skip target seen in this frame). Metadata is capped at
// the unframed size per message — a frame never exceeds the messages it
// replaces; operation payloads are incompressible and ride along as-is.
std::uint64_t graph_msg_framed_bytes(UpdateId& prev, const GraphMsg& m, bool ship_ops) {
  switch (m.kind) {
    case GraphMsg::Kind::kNode: {
      UpdateId chain = prev;
      std::uint64_t b = 1 + id_delta_bytes(chain, m.node.id);
      b += id_delta_bytes(chain, m.node.lp);
      b += id_delta_bytes(chain, m.node.rp);
      prev = m.node.id;
      return std::min(b, graph_msg_wire_bytes(m)) +
             (ship_ops ? m.node.op_bytes : 0);
    }
    case GraphMsg::Kind::kSkipTo: {
      UpdateId chain = prev;
      const std::uint64_t b = 1 + id_delta_bytes(chain, m.target);
      prev = m.target;
      return std::min(b, graph_msg_wire_bytes(m));
    }
    case GraphMsg::Kind::kJumped:
    case GraphMsg::Kind::kHalt:
    case GraphMsg::Kind::kAck:
      return 1;
  }
  return 0;
}

}  // namespace

std::uint64_t graph_frame_wire_bytes(const std::vector<GraphMsg>& msgs, bool ship_ops) {
  UpdateId prev{};
  std::uint64_t total = 0;
  for (const GraphMsg& m : msgs) total += graph_msg_framed_bytes(prev, m, ship_ops);
  return total;
}

std::uint64_t graph_frame_wire_bytes_single(const GraphMsg& m, bool ship_ops) {
  UpdateId prev{};
  return graph_msg_framed_bytes(prev, m, ship_ops);
}

namespace {

class GraphPeer {
 public:
  GraphPeer(sim::EventLoop* loop, sim::FrameLink<GraphMsg>* tx, const GraphSyncOptions* opt)
      : loop_(loop), tx_(tx), opt_(opt) {}
  virtual ~GraphPeer() = default;
  virtual void on_message(const GraphMsg& m) = 0;

 protected:
  sim::Time send(const GraphMsg& m) {
    std::uint64_t bits = graph_msg_model_bits(opt_->cost, m);
    std::uint64_t bytes = graph_msg_wire_bytes(m);
    if (m.kind == GraphMsg::Kind::kNode && opt_->ship_ops) bytes += m.node.op_bytes;
    if (m.kind == GraphMsg::Kind::kAck && opt_->mode == vv::TransferMode::kIdeal) {
      bits = 0;
      bytes = 0;
    }
    return tx_->send(m, bits, bytes);
  }

  bool pipelined() const { return opt_->mode == vv::TransferMode::kPipelined; }

  sim::EventLoop* loop_;
  sim::FrameLink<GraphMsg>* tx_;
  const GraphSyncOptions* opt_;
};

// Algorithm 5, b's hosting site: DFS from the sink, reverse arc direction.
class GraphSender : public GraphPeer {
 public:
  GraphSender(sim::EventLoop* loop, sim::FrameLink<GraphMsg>* tx, const GraphSyncOptions* opt,
              const CausalGraph* b)
      : GraphPeer(loop, tx, opt), b_(b) {
    if (!b_->empty()) stack_.push_back(b_->sink());
  }

  void start() {
    if (pipelined()) {
      pump();
    } else {
      step_lockstep();
    }
  }

  void on_message(const GraphMsg& m) override {
    if (done_) return;
    switch (m.kind) {
      case GraphMsg::Kind::kHalt:
        finish();
        break;
      case GraphMsg::Kind::kSkipTo:
        handle_skipto(m.target);
        if (!pipelined()) step_lockstep();  // SKIPTO doubles as the ack
        break;
      case GraphMsg::Kind::kAck:
        OPTREP_CHECK_MSG(!pipelined(), "ACK in pipelined mode");
        step_lockstep();
        break;
      default:
        OPTREP_CHECK_MSG(false, "unexpected message at graph sender");
    }
  }

  std::uint64_t nodes_sent() const { return nodes_sent_; }

 private:
  void pump() {
    pending_ = 0;
    if (done_) return;
    const sim::Time free = emit_one();
    if (done_) return;
    pending_ = loop_->schedule(free, [this] { pump(); });
  }

  void step_lockstep() {
    if (done_) return;
    // Skip already-visited stack entries without consuming a round trip.
    emit_one();
  }

  // Pop until an unvisited node is found and send it; HALT when exhausted.
  // Returns the link-free time of whatever was sent.
  sim::Time emit_one() {
    while (!stack_.empty()) {
      const UpdateId i = stack_.back();
      stack_.pop_back();
      if (visited_.contains(i)) continue;
      visited_.emplace(i, true);
      const Node* n = b_->find(i);
      OPTREP_CHECK(n != nullptr);
      // Alg 5 lines 7–9: send (i, LP, RP); push RP then LP so LP pops first.
      if (n->rp != kNoParent) stack_.push_back(n->rp);
      if (n->lp != kNoParent) stack_.push_back(n->lp);
      GraphMsg m;
      m.kind = GraphMsg::Kind::kNode;
      m.node = *n;
      const sim::Time free = send(m);
      ++nodes_sent_;
      return free;
    }
    const sim::Time free = send(GraphMsg{.kind = GraphMsg::Kind::kHalt});
    finish();
    return free;
  }

  // Alg 5 lines 11–13: rewind the stack to `target` unless it was already
  // visited (the receiver's request raced with our progress). An honored
  // rewind is confirmed with a JUMPED marker so the receiver can tell
  // in-flight stragglers of the aborted branch from the next branch.
  void handle_skipto(UpdateId target) {
    if (visited_.contains(target)) return;
    while (!stack_.empty() && stack_.back() != target) stack_.pop_back();
    OPTREP_CHECK_MSG(!stack_.empty(), "skipto target missing from DFS stack");
    send(GraphMsg{.kind = GraphMsg::Kind::kJumped});
  }

  void finish() {
    done_ = true;
    if (pending_ != 0) {
      loop_->cancel(pending_);
      pending_ = 0;
    }
  }

  const CausalGraph* b_;
  std::vector<UpdateId> stack_;
  std::unordered_map<UpdateId, bool> visited_;
  std::uint64_t nodes_sent_{0};
  bool done_{false};
  sim::EventLoop::EventId pending_{0};
};

// Algorithm 5, a's hosting site: mirrors the sender's stack of pending right
// parents; on an existing node, names the next branch head to jump to.
class GraphReceiver : public GraphPeer {
 public:
  GraphReceiver(sim::EventLoop* loop, sim::FrameLink<GraphMsg>* tx, const GraphSyncOptions* opt,
                CausalGraph* a)
      : GraphPeer(loop, tx, opt), a_(a) {}

  void on_message(const GraphMsg& m) override {
    switch (m.kind) {
      case GraphMsg::Kind::kHalt:
        finished_ = true;
        return;
      case GraphMsg::Kind::kJumped:
        // The sender switched branches; stragglers are over.
        skipping_ = false;
        return;
      case GraphMsg::Kind::kNode:
        break;
      default:
        OPTREP_CHECK_MSG(false, "unexpected message at graph receiver");
    }
    if (finished_) {
      ++nodes_after_halt_;
      return;
    }
    const Node& n = m.node;
    if (a_->contains(n.id)) {
      ++nodes_redundant_;
      // In pipelined mode, a known node while skipping_ is an in-flight
      // straggler of a branch we already aborted: stay silent. In lockstep
      // modes there are no stragglers and the sender is blocked on us, so we
      // always respond.
      if (skipping_ && pipelined()) return;
      skipping_ = true;
      // Pop mirror entries we already have: branches starting there need no
      // transmission either (containment is ancestor-closed). An empty
      // mirror means everything the sender still holds is known here — stop
      // the whole synchronization.
      std::optional<UpdateId> target;
      while (!mirror_.empty()) {
        const UpdateId candidate = mirror_.back();
        mirror_.pop_back();
        if (!a_->contains(candidate)) {
          target = candidate;
          break;
        }
      }
      if (target.has_value()) {
        send(GraphMsg{.kind = GraphMsg::Kind::kSkipTo, .target = *target});
        ++skipto_msgs_;
      } else {
        send(GraphMsg{.kind = GraphMsg::Kind::kHalt});
        finished_ = true;
      }
      return;
    }
    skipping_ = false;
    if (!mirror_.empty() && mirror_.back() == n.id) mirror_.pop_back();
    a_->insert_raw(n);
    ++nodes_new_;
    new_node_ids_.push_back(n.id);
    op_bytes_ += opt_->ship_ops ? n.op_bytes : 0;
    if (n.rp != kNoParent && !a_->contains(n.rp)) mirror_.push_back(n.rp);
    ack();
  }

  std::uint64_t nodes_new() const { return nodes_new_; }
  std::vector<UpdateId> take_new_node_ids() { return std::move(new_node_ids_); }
  std::uint64_t nodes_redundant() const { return nodes_redundant_; }
  std::uint64_t skipto_msgs() const { return skipto_msgs_; }
  std::uint64_t op_bytes() const { return op_bytes_; }
  std::uint64_t acks() const { return acks_; }

 private:
  void ack() {
    if (pipelined() || finished_) return;
    send(GraphMsg{.kind = GraphMsg::Kind::kAck});
    ++acks_;
  }

  CausalGraph* a_;
  std::vector<UpdateId> mirror_;  // s' of Alg 5
  std::vector<UpdateId> new_node_ids_;
  bool skipping_{false};
  bool finished_{false};
  std::uint64_t nodes_new_{0};
  std::uint64_t nodes_redundant_{0};
  std::uint64_t nodes_after_halt_{0};
  std::uint64_t skipto_msgs_{0};
  std::uint64_t op_bytes_{0};
  std::uint64_t acks_{0};
};

void install_framing(sim::FrameDuplex<GraphMsg>& duplex, bool ship_ops) {
  for (sim::FrameLink<GraphMsg>* l : {&duplex.a_to_b(), &duplex.b_to_a()}) {
    l->set_frame_sizer([ship_ops](const std::vector<GraphMsg>& msgs) {
      return graph_frame_wire_bytes(msgs, ship_ops);
    });
    l->set_msg_sizer(
        [ship_ops](const GraphMsg& m) { return graph_frame_wire_bytes_single(m, ship_ops); });
    l->set_flush_after([](const GraphMsg& m) { return m.kind != GraphMsg::Kind::kNode; });
  }
}

void harvest_framing(sim::EventLoop& loop, sim::FrameDuplex<GraphMsg>& duplex,
                     std::uint64_t events_before, GraphSyncReport& r) {
  duplex.b_to_a().close_frame();
  duplex.a_to_b().close_frame();
  r.frames_fwd = duplex.b_to_a().stats().frames;
  r.frames_rev = duplex.a_to_b().stats().frames;
  r.framed_bytes_fwd = duplex.b_to_a().stats().framed_wire_bytes;
  r.framed_bytes_rev = duplex.a_to_b().stats().framed_wire_bytes;
  r.loop_events = loop.executed_events() - events_before;
}

}  // namespace

GraphSyncReport sync_graph(sim::EventLoop& loop, CausalGraph& a, const CausalGraph& b,
                           const GraphSyncOptions& opt) {
  const vv::Ordering rel = a.compare(b);
  sim::FrameDuplex<GraphMsg> duplex(&loop, opt.net);
  install_framing(duplex, opt.ship_ops);
  GraphSender sender(&loop, &duplex.b_to_a(), &opt, &b);
  GraphReceiver receiver(&loop, &duplex.a_to_b(), &opt, &a);
  duplex.b_to_a().set_receiver([&receiver](const GraphMsg& m) { receiver.on_message(m); });
  duplex.a_to_b().set_receiver([&sender](const GraphMsg& m) { sender.on_message(m); });
  const sim::Time t0 = loop.now();
  const std::uint64_t ev0 = loop.executed_events();
  loop.schedule(t0, [&sender] { sender.start(); });
  const sim::Time t_end = loop.run();

  GraphSyncReport r;
  harvest_framing(loop, duplex, ev0, r);
  r.initial_relation = rel;
  r.bits_fwd = duplex.b_to_a().stats().model_bits;
  r.bits_rev = duplex.a_to_b().stats().model_bits;
  r.bytes_fwd = duplex.b_to_a().stats().wire_bytes;
  r.bytes_rev = duplex.a_to_b().stats().wire_bytes;
  r.msgs_fwd = duplex.b_to_a().stats().messages;
  r.msgs_rev = duplex.a_to_b().stats().messages;
  r.nodes_sent = sender.nodes_sent();
  r.nodes_new = receiver.nodes_new();
  r.new_node_ids = receiver.take_new_node_ids();
  r.nodes_redundant = receiver.nodes_redundant();
  r.skipto_msgs = receiver.skipto_msgs();
  r.op_bytes_shipped = receiver.op_bytes();
  r.ack_msgs = receiver.acks();
  r.duration = t_end - t0;
  return r;
}

GraphSyncReport sync_graph_full(sim::EventLoop& loop, CausalGraph& a, const CausalGraph& b,
                                const GraphSyncOptions& opt) {
  const vv::Ordering rel = a.compare(b);
  sim::FrameDuplex<GraphMsg> duplex(&loop, opt.net);
  install_framing(duplex, opt.ship_ops);
  std::uint64_t nodes_new = 0;
  std::uint64_t nodes_redundant = 0;
  std::uint64_t op_bytes = 0;
  std::vector<UpdateId> new_ids;
  duplex.b_to_a().set_receiver([&](const GraphMsg& m) {
    if (m.kind != GraphMsg::Kind::kNode) return;
    if (a.contains(m.node.id)) {
      ++nodes_redundant;
    } else {
      a.insert_raw(m.node);
      ++nodes_new;
      new_ids.push_back(m.node.id);
      op_bytes += opt.ship_ops ? m.node.op_bytes : 0;
    }
  });
  duplex.a_to_b().set_receiver([](const GraphMsg&) {});

  // Deterministic order for reproducibility.
  std::vector<Node> nodes = b.all_nodes();
  std::sort(nodes.begin(), nodes.end(),
            [](const Node& x, const Node& y) { return x.id < y.id; });
  const sim::Time t0 = loop.now();
  const std::uint64_t ev0 = loop.executed_events();
  loop.schedule(t0, [&duplex, nodes = std::move(nodes), &opt] {
    for (const Node& n : nodes) {
      GraphMsg m;
      m.kind = GraphMsg::Kind::kNode;
      m.node = n;
      std::uint64_t bytes = graph_msg_wire_bytes(m);
      if (opt.ship_ops) bytes += n.op_bytes;
      duplex.b_to_a().send(m, graph_msg_model_bits(opt.cost, m), bytes);
    }
    GraphMsg halt{.kind = GraphMsg::Kind::kHalt};
    duplex.b_to_a().send(halt, graph_msg_model_bits(opt.cost, halt),
                         graph_msg_wire_bytes(halt));
  });
  const sim::Time t_end = loop.run();

  GraphSyncReport r;
  harvest_framing(loop, duplex, ev0, r);
  r.initial_relation = rel;
  r.bits_fwd = duplex.b_to_a().stats().model_bits;
  r.bytes_fwd = duplex.b_to_a().stats().wire_bytes;
  r.msgs_fwd = duplex.b_to_a().stats().messages;
  r.nodes_sent = b.node_count();
  r.nodes_new = nodes_new;
  r.new_node_ids = std::move(new_ids);
  r.nodes_redundant = nodes_redundant;
  r.op_bytes_shipped = op_bytes;
  r.duration = t_end - t0;
  return r;
}

}  // namespace optrep::graph
