// Graphviz export of causal graphs (used by the figure-reproduction example).
#pragma once

#include <string>

#include "graph/causal_graph.h"

namespace optrep::graph {

// Render as DOT: nodes labelled "Site:seq", reconciliation nodes shaded gray
// like the paper's Figure 1.
std::string to_dot(const CausalGraph& g, const std::string& name = "causal_graph");

}  // namespace optrep::graph
