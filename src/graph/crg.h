// Replication graphs and coalesced replication graphs (CRG) — the §4
// formalism behind skip rotating vectors, used here as an *analysis oracle*:
//
//  - each node represents identical replicas of one object; single-parent
//    nodes result from one update, double-parent nodes from reconciliation;
//  - the CRG merges consecutive single-parent nodes each with at most one
//    child; every coalesced chain contributes one *prefixing segment*;
//  - Π_v is the set of chain nodes among v's ancestors (§4.1); the §5 lower
//    bound says any SYNCS_b(a) skips at most |Π_a ∩ Π_b| segments.
//
// The tracker is built *alongside* a running system (tests/benches call
// add_update / add_merge / add_sync as the replicas evolve) and then answers
// structural questions that the protocols themselves never need — it exists
// to validate them.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "vv/version_vector.h"

namespace optrep::graph {

class ReplicationGraph {
 public:
  using NodeIdx = std::uint32_t;
  static constexpr NodeIdx kNone = 0xffffffffu;

  struct Node {
    NodeIdx lp{kNone};
    NodeIdx rp{kNone};
    // For single-parent (update) nodes: the update that created this node.
    SiteId updater{};
    std::uint64_t update_value{0};  // new value of the updater's element
    std::uint32_t children{0};

    bool is_merge() const { return rp != kNone; }
    bool is_root() const { return lp == kNone && rp == kNone; }
  };

  // The object's creation: its initial replica, counted as update #1 on the
  // creating site (Figure 1's node 1 carries <A:1>).
  NodeIdx add_root(SiteId site);

  // A local update on the replica currently at `parent`.
  NodeIdx add_update(NodeIdx parent, SiteId site);

  // A reconciliation of the replicas at `left` and `right` (the resulting
  // node's vector is the join). The §2.2 post-reconciliation increment is a
  // separate add_update on the returned node.
  NodeIdx add_merge(NodeIdx left, NodeIdx right);

  const Node& node(NodeIdx i) const { return nodes_[i]; }
  const vv::VersionVector& vector_of(NodeIdx i) const { return vectors_[i]; }
  std::size_t size() const { return nodes_.size(); }

  // ---- CRG analysis --------------------------------------------------------

  // One element of a prefixing segment.
  struct SegElem {
    SiteId site{};
    std::uint64_t value{0};
    friend bool operator==(const SegElem&, const SegElem&) = default;
  };

  // Chain id: the youngest node of a coalesced single-parent chain. Merge
  // nodes never belong to a chain.
  using ChainId = NodeIdx;

  // The chain a node belongs to, or kNone for merge nodes.
  ChainId chain_of(NodeIdx i) const;

  // The prefixing segment contributed by a chain, youngest update first
  // (matching ≺ order: <G:1, F:1, E:1> for Figure 1's 4–5–6 chain).
  std::vector<SegElem> prefixing_segment(ChainId chain) const;

  // Π_v: chains among v's ancestors, v included (§4.1).
  std::unordered_set<ChainId> pi(NodeIdx v) const;

  // Theorem 5.1 / §4.1: an upper bound on the number of segments any
  // synchronization between replicas at `a` and `b` may skip.
  std::size_t gamma_bound(NodeIdx a, NodeIdx b) const;

  // All true segments of the vector at `v` (every chain in Π_v contributes
  // one, possibly shrunk by later updates or vanished): the *live* elements
  // of each segment, i.e. those whose (site, value) still match v's vector.
  // Vanished segments (Φ of §4.1) are omitted.
  std::vector<std::vector<SegElem>> live_segments(NodeIdx v) const;

  std::string to_string(NodeIdx v) const;

 private:
  NodeIdx push(Node n, vv::VersionVector vec);
  bool coalesces(NodeIdx parent, NodeIdx child) const;

  std::vector<Node> nodes_;
  std::vector<vv::VersionVector> vectors_;
  // only_child_[i] is valid exactly when nodes_[i].children == 1.
  std::vector<NodeIdx> only_child_;
};

}  // namespace optrep::graph
