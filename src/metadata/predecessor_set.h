// Predecessor sets ([1] §4.2) — the other baseline of Observation 2.1.
//
// Each replica carries the set of identifiers of all operations that shaped
// its state. Causal comparison is subset testing. The per-replica size is at
// least one entry per active site (and grows with updates unless truncated),
// which is why §2.2 argues version vectors dominate this scheme for
// state-transfer concurrency control.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "common/ids.h"
#include "vv/order.h"

namespace optrep::meta {

class PredecessorSet {
 public:
  // site id (4) + sequence number (8) per entry.
  static constexpr std::uint64_t kBytesPerEntry = 12;

  void record_update(UpdateId id) { ops_.insert(id); }

  // Synchronization result: the union of both sets.
  void join(const PredecessorSet& other) { ops_.insert(other.ops_.begin(), other.ops_.end()); }

  bool contains(UpdateId id) const { return ops_.contains(id); }
  std::size_t size() const { return ops_.size(); }

  vv::Ordering compare(const PredecessorSet& other) const;

  std::uint64_t storage_bytes() const { return size() * kBytesPerEntry; }
  std::uint64_t exchange_bytes() const { return storage_bytes(); }

 private:
  std::unordered_set<UpdateId> ops_;
};

}  // namespace optrep::meta
