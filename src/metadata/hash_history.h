// Hash histories (Kang, Wilensky, Kubiatowicz [12]) — a baseline metadata
// scheme for Observation 2.1 and the storage/scalability benches.
//
// Each replica keeps the DAG of version hashes it has passed through; two
// replicas are ordered by containment of their current version hash in the
// other's history, concurrent otherwise. Unlike version vectors the per-
// replica state grows with the number of versions (updates + merges), not
// with the number of sites.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/ids.h"
#include "vv/order.h"

namespace optrep::meta {

using VersionHash = std::uint64_t;

class HashHistory {
 public:
  // Size of one entry in the original scheme (SHA-1 hash + parent links).
  static constexpr std::uint64_t kBytesPerEntry = 20;

  HashHistory() = default;

  VersionHash head() const { return head_; }
  bool contains(VersionHash h) const { return versions_.contains(h); }
  std::size_t version_count() const { return versions_.size(); }

  // A local update creates a new version whose hash covers the previous one.
  void record_update(UpdateId id);

  // Adopt the other replica's state wholesale (state transfer of a
  // dominating replica): union histories, take the other head.
  void fast_forward(const HashHistory& other);

  // Reconciliation: union histories and add a merge version with both heads
  // as parents. Deterministic in the pair of heads, so both sites converge
  // to the same merge hash for the same pair of inputs.
  void merge(const HashHistory& other);

  vv::Ordering compare(const HashHistory& other) const;

  // Metadata footprint and full-exchange cost (the scheme ships the whole
  // history on synchronization).
  std::uint64_t storage_bytes() const { return version_count() * kBytesPerEntry; }
  std::uint64_t exchange_bytes() const { return storage_bytes(); }

 private:
  void absorb(const HashHistory& other);

  std::unordered_set<VersionHash> versions_;
  VersionHash head_{0};  // 0 = pristine (no versions)
};

}  // namespace optrep::meta
