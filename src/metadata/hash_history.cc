#include "metadata/hash_history.h"

#include <algorithm>

namespace optrep::meta {
namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a * 0x9e3779b97f4a7c15ULL + b + 0x165667b19e3779f9ULL;
  x ^= x >> 29;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 32;
  return x | 1;  // never zero (zero means "pristine")
}

}  // namespace

void HashHistory::record_update(UpdateId id) {
  const std::uint64_t id_bits = (std::uint64_t{id.site.value} << 40) ^ id.seq;
  head_ = mix(head_, id_bits);
  versions_.insert(head_);
}

void HashHistory::fast_forward(const HashHistory& other) {
  absorb(other);
  head_ = other.head_;
}

void HashHistory::merge(const HashHistory& other) {
  const VersionHash lo = std::min(head_, other.head_);
  const VersionHash hi = std::max(head_, other.head_);
  absorb(other);
  head_ = mix(lo, hi);
  versions_.insert(head_);
}

vv::Ordering HashHistory::compare(const HashHistory& other) const {
  if (head_ == other.head_) return vv::Ordering::kEqual;
  if (head_ == 0) return vv::Ordering::kBefore;
  if (other.head_ == 0) return vv::Ordering::kAfter;
  const bool mine_known = other.contains(head_);
  const bool theirs_known = contains(other.head_);
  if (mine_known && theirs_known) return vv::Ordering::kEqual;  // aliased heads
  if (mine_known) return vv::Ordering::kBefore;
  if (theirs_known) return vv::Ordering::kAfter;
  return vv::Ordering::kConcurrent;
}

void HashHistory::absorb(const HashHistory& other) {
  versions_.insert(other.versions_.begin(), other.versions_.end());
}

}  // namespace optrep::meta
