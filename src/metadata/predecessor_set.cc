#include "metadata/predecessor_set.h"

namespace optrep::meta {

vv::Ordering PredecessorSet::compare(const PredecessorSet& other) const {
  bool mine_extra = false;
  for (const UpdateId& id : ops_) {
    if (!other.contains(id)) {
      mine_extra = true;
      break;
    }
  }
  bool theirs_extra = false;
  for (const UpdateId& id : other.ops_) {
    if (!contains(id)) {
      theirs_extra = true;
      break;
    }
  }
  if (mine_extra && theirs_extra) return vv::Ordering::kConcurrent;
  if (mine_extra) return vv::Ordering::kAfter;
  if (theirs_extra) return vv::Ordering::kBefore;
  return vv::Ordering::kEqual;
}

}  // namespace optrep::meta
