#include "workload/trace.h"

#include <algorithm>
#include <unordered_set>

#include "obs/prof.h"

namespace optrep::wl {

namespace {

SiteId pick_updater(Rng& rng, const GeneratorConfig& cfg) {
  if (cfg.locality > 0.0 && rng.chance(cfg.locality)) {
    return SiteId{static_cast<std::uint32_t>(rng.below(std::max<std::uint32_t>(cfg.hot_sites, 1)))};
  }
  return SiteId{static_cast<std::uint32_t>(rng.below(cfg.n_sites))};
}

SiteId pick_peer(Rng& rng, const GeneratorConfig& cfg, SiteId self) {
  switch (cfg.topology) {
    case Topology::kRing: {
      const std::uint32_t left = (self.value + cfg.n_sites - 1) % cfg.n_sites;
      const std::uint32_t right = (self.value + 1) % cfg.n_sites;
      return SiteId{rng.chance(0.5) ? left : right};
    }
    case Topology::kStar:
      return self.value == 0
                 ? SiteId{static_cast<std::uint32_t>(1 + rng.below(cfg.n_sites - 1))}
                 : SiteId{0};
    case Topology::kClustered: {
      const std::uint32_t cluster = self.value / cfg.cluster_size;
      const std::uint32_t clusters =
          (cfg.n_sites + cfg.cluster_size - 1) / cfg.cluster_size;
      if (clusters > 1 && rng.chance(cfg.bridge_prob)) {
        // Bridge: a peer from a different cluster.
        for (;;) {
          const auto p = static_cast<std::uint32_t>(rng.below(cfg.n_sites));
          if (p / cfg.cluster_size != cluster && p != self.value) return SiteId{p};
        }
      }
      const std::uint32_t base = cluster * cfg.cluster_size;
      const std::uint32_t size =
          std::min(cfg.cluster_size, cfg.n_sites - base);
      if (size <= 1) return SiteId{(self.value + 1) % cfg.n_sites};
      for (;;) {
        const auto p = base + static_cast<std::uint32_t>(rng.below(size));
        if (p != self.value) return SiteId{p};
      }
    }
    case Topology::kRandomGossip:
    default:
      for (;;) {
        const auto p = static_cast<std::uint32_t>(rng.below(cfg.n_sites));
        if (p != self.value) return SiteId{p};
      }
  }
}

}  // namespace

Trace generate(const GeneratorConfig& cfg) {
  OPTREP_CHECK(cfg.n_sites >= 2);
  OPTREP_CHECK(cfg.n_objects >= 1);
  Rng rng(cfg.seed);
  Trace t;
  t.n_sites = cfg.n_sites;
  t.n_objects = cfg.n_objects;
  t.config = cfg;
  t.events.reserve(cfg.steps + cfg.n_objects);
  // Each object is created on a deterministic home site.
  for (std::uint32_t o = 0; o < cfg.n_objects; ++o) {
    t.events.push_back(Event{Event::Type::kCreate, SiteId{o % cfg.n_sites}, SiteId{},
                             ObjectId{o}});
  }
  for (std::uint32_t s = 0; s < cfg.steps; ++s) {
    const ObjectId obj{static_cast<std::uint32_t>(rng.below(cfg.n_objects))};
    if (rng.chance(cfg.update_prob)) {
      t.events.push_back(Event{Event::Type::kUpdate, pick_updater(rng, cfg), SiteId{}, obj});
    } else {
      const SiteId self{static_cast<std::uint32_t>(rng.below(cfg.n_sites))};
      t.events.push_back(Event{Event::Type::kSync, self, pick_peer(rng, cfg, self), obj});
    }
  }
  return t;
}

Trace append_only_log(std::uint32_t n_sites, std::uint32_t steps, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.n_sites = n_sites;
  cfg.n_objects = 1;
  cfg.steps = steps;
  cfg.update_prob = 0.8;  // heavy concurrent appending → conflicts abound (§4)
  cfg.topology = Topology::kRandomGossip;
  cfg.seed = seed;
  Trace t = generate(cfg);
  t.scenario = "append_only_log";
  return t;
}

Trace dtn_store(std::uint32_t n_sites, std::uint32_t n_objects, std::uint32_t steps,
                std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.n_sites = n_sites;
  cfg.n_objects = n_objects;
  cfg.steps = steps;
  cfg.update_prob = 0.3;  // mostly opportunistic exchanges, few local writes
  cfg.topology = Topology::kRandomGossip;
  cfg.seed = seed;
  Trace t = generate(cfg);
  t.scenario = "dtn_store";
  return t;
}

Trace collaboration(std::uint32_t n_sites, std::uint32_t steps, std::uint64_t seed) {
  GeneratorConfig cfg;
  cfg.n_sites = n_sites;
  cfg.n_objects = 1;
  cfg.steps = steps;
  cfg.update_prob = 0.4;
  cfg.topology = Topology::kClustered;
  cfg.cluster_size = std::max<std::uint32_t>(n_sites / 4, 2);
  cfg.bridge_prob = 0.05;
  cfg.seed = seed;
  Trace t = generate(cfg);
  t.scenario = "collaboration";
  return t;
}

namespace {

// Ensure `site` holds a usable replica before an update: opportunistically
// pull from some existing host (this itself is a sync session).
template <class System>
bool ensure_replica(System& sys, RunStats& stats, SiteId site, ObjectId obj,
                    const std::vector<SiteId>& creators) {
  if (sys.has_replica(site, obj)) return true;
  for (SiteId host : creators) {
    if (host != site && sys.has_replica(host, obj)) {
      sys.sync(site, host, obj);
      ++stats.syncs;
      return sys.has_replica(site, obj);
    }
  }
  return false;
}

}  // namespace

RunStats run_state(repl::StateSystem& sys, const Trace& trace, bool drive_to_consistency) {
  OPTREP_SPAN("wl.run_state");
  RunStats stats;
  std::vector<SiteId> creators(trace.n_objects, SiteId{});
  std::uint64_t entry_no = 0;
  for (const Event& ev : trace.events) {
    switch (ev.type) {
      case Event::Type::kCreate:
        creators[ev.obj.value] = ev.site;
        sys.create_object(ev.site, ev.obj, "entry-" + std::to_string(entry_no++));
        ++stats.updates;
        break;
      case Event::Type::kUpdate: {
        if (!ensure_replica(sys, stats, ev.site, ev.obj, {creators[ev.obj.value]})) {
          ++stats.skipped;
          break;
        }
        if (sys.replica(ev.site, ev.obj).conflicted) {
          ++stats.skipped;
          break;
        }
        sys.update(ev.site, ev.obj, "entry-" + std::to_string(entry_no++));
        ++stats.updates;
        break;
      }
      case Event::Type::kSync: {
        if (!sys.has_replica(ev.peer, ev.obj)) {
          ++stats.skipped;
          break;
        }
        const auto out = sys.sync(ev.site, ev.peer, ev.obj);
        ++stats.syncs;
        if (out.relation == vv::Ordering::kConcurrent) ++stats.conflicts;
        break;
      }
    }
  }

  if (drive_to_consistency &&
      sys.config().policy == repl::ResolutionPolicy::kAutomatic) {
    // Anti-entropy sweeps: ring passes in both directions until stable.
    for (std::uint32_t round = 0; round < 4 * trace.n_sites + 8; ++round) {
      OPTREP_SPAN("wl.anti_entropy");
      bool all_consistent = true;
      for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
        const ObjectId obj{o};
        auto hosts = sys.hosts_of(obj);
        if (hosts.size() < 2) continue;
        for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
          sys.sync(hosts[i + 1], hosts[i], obj);
          ++stats.syncs;
        }
        for (std::size_t i = hosts.size() - 1; i > 0; --i) {
          sys.sync(hosts[i - 1], hosts[i], obj);
          ++stats.syncs;
        }
        if (!sys.replicas_consistent(obj)) all_consistent = false;
      }
      stats.anti_entropy_rounds = round + 1;
      if (all_consistent) break;
    }
  }
  stats.eventually_consistent = true;
  for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
    if (!sys.replicas_consistent(ObjectId{o})) stats.eventually_consistent = false;
  }
  return stats;
}

RunStats run_state_parallel(repl::StateSystem& sys, const Trace& trace,
                            rt::ThreadPool& pool, bool drive_to_consistency,
                            repl::StateSystem::BatchStats* batch_stats) {
  OPTREP_SPAN("wl.run_state_parallel");
  using BE = repl::StateSystem::BatchEvent;
  RunStats stats;

  const auto run = [&](std::vector<BE>&& batch) {
    std::vector<repl::SyncOutcome> outs;
    if (batch.empty()) return outs;
    repl::StateSystem::BatchStats bs;
    outs = sys.run_batch(batch, pool, &bs);
    if (batch_stats != nullptr) {
      batch_stats->waves += bs.waves;
      batch_stats->max_wave_items =
          std::max(batch_stats->max_wave_items, bs.max_wave_items);
      batch_stats->olock.acquisitions += bs.olock.acquisitions;
      batch_stats->olock.opt_retries += bs.olock.opt_retries;
      batch_stats->olock.queue_waits += bs.olock.queue_waits;
    }
    return outs;
  };

  // Driver-side presence simulation: run_state decides skips and injected
  // creator syncs by querying the system mid-trace; a batch defers execution,
  // so the same decisions are replayed here against a presence set — a
  // replica exists after its create, or after any sync that targeted it
  // (even a failed pull creates the empty receiver replica).
  const auto pk = [](SiteId s, ObjectId o) {
    return (std::uint64_t{s.value} << 32) | std::uint64_t{o.value};
  };
  std::unordered_set<std::uint64_t> present;
  for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
    for (const SiteId s : sys.hosts_of(ObjectId{o})) present.insert(pk(s, ObjectId{o}));
  }

  std::vector<SiteId> creators(trace.n_objects, SiteId{});
  std::vector<BE> ev;
  ev.reserve(trace.events.size());
  // Batch indexes of the trace's own kSync events — the only sessions whose
  // conflicts run_state counts (injected and anti-entropy syncs are not).
  std::vector<std::size_t> conflict_slots;
  std::uint64_t entry_no = 0;
  for (const Event& e : trace.events) {
    switch (e.type) {
      case Event::Type::kCreate:
        creators[e.obj.value] = e.site;
        ev.push_back({BE::Type::kCreate, e.site, SiteId{}, e.obj,
                      "entry-" + std::to_string(entry_no++)});
        present.insert(pk(e.site, e.obj));
        ++stats.updates;
        break;
      case Event::Type::kUpdate: {
        if (!present.contains(pk(e.site, e.obj))) {
          const SiteId host = creators[e.obj.value];
          if (host == e.site || !present.contains(pk(host, e.obj))) {
            ++stats.skipped;
            break;
          }
          ev.push_back({BE::Type::kSync, e.site, host, e.obj, {}});
          present.insert(pk(e.site, e.obj));
          ++stats.syncs;
        }
        ev.push_back({BE::Type::kUpdate, e.site, SiteId{}, e.obj,
                      "entry-" + std::to_string(entry_no++)});
        ++stats.updates;
        break;
      }
      case Event::Type::kSync:
        if (!present.contains(pk(e.peer, e.obj))) {
          ++stats.skipped;
          break;
        }
        ev.push_back({BE::Type::kSync, e.site, e.peer, e.obj, {}});
        conflict_slots.push_back(ev.size() - 1);
        present.insert(pk(e.site, e.obj));
        ++stats.syncs;
        break;
    }
  }
  const std::vector<repl::SyncOutcome> outs = run(std::move(ev));
  for (const std::size_t i : conflict_slots) {
    if (outs[i].relation == vv::Ordering::kConcurrent) ++stats.conflicts;
  }

  if (drive_to_consistency &&
      sys.config().policy == repl::ResolutionPolicy::kAutomatic) {
    // Anti-entropy sweeps, one batch per round. The ring passes chain (every
    // session reads the previous receiver), so the planner degrades them to
    // singleton waves — correct, just not parallel (see rt/shard.h).
    for (std::uint32_t round = 0; round < 4 * trace.n_sites + 8; ++round) {
      OPTREP_SPAN("wl.anti_entropy");
      std::vector<BE> round_ev;
      for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
        const ObjectId obj{o};
        const auto hosts = sys.hosts_of(obj);
        if (hosts.size() < 2) continue;
        for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
          round_ev.push_back({BE::Type::kSync, hosts[i + 1], hosts[i], obj, {}});
        }
        for (std::size_t i = hosts.size() - 1; i > 0; --i) {
          round_ev.push_back({BE::Type::kSync, hosts[i - 1], hosts[i], obj, {}});
        }
      }
      stats.syncs += round_ev.size();
      run(std::move(round_ev));
      bool all_consistent = true;
      for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
        const ObjectId obj{o};
        if (sys.hosts_of(obj).size() < 2) continue;
        if (!sys.replicas_consistent(obj)) all_consistent = false;
      }
      stats.anti_entropy_rounds = round + 1;
      if (all_consistent) break;
    }
  }
  stats.eventually_consistent = true;
  for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
    if (!sys.replicas_consistent(ObjectId{o})) stats.eventually_consistent = false;
  }
  return stats;
}

RunStats run_op(repl::OpSystem& sys, const Trace& trace, bool drive_to_consistency) {
  OPTREP_SPAN("wl.run_op");
  RunStats stats;
  std::vector<SiteId> creators(trace.n_objects, SiteId{});
  std::uint64_t entry_no = 0;
  for (const Event& ev : trace.events) {
    switch (ev.type) {
      case Event::Type::kCreate:
        creators[ev.obj.value] = ev.site;
        sys.create_object(ev.site, ev.obj, "op-" + std::to_string(entry_no++));
        ++stats.updates;
        break;
      case Event::Type::kUpdate:
        if (!ensure_replica(sys, stats, ev.site, ev.obj, {creators[ev.obj.value]})) {
          ++stats.skipped;
          break;
        }
        sys.update(ev.site, ev.obj, "op-" + std::to_string(entry_no++));
        ++stats.updates;
        break;
      case Event::Type::kSync: {
        if (!sys.has_replica(ev.peer, ev.obj)) {
          ++stats.skipped;
          break;
        }
        const auto out = sys.sync(ev.site, ev.peer, ev.obj);
        ++stats.syncs;
        if (out.relation == vv::Ordering::kConcurrent) ++stats.conflicts;
        break;
      }
    }
  }

  if (drive_to_consistency) {
    for (std::uint32_t round = 0; round < 4 * trace.n_sites + 8; ++round) {
      OPTREP_SPAN("wl.anti_entropy");
      bool all_consistent = true;
      for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
        const ObjectId obj{o};
        std::vector<SiteId> hosts;
        for (std::uint32_t s = 0; s < trace.n_sites; ++s) {
          if (sys.has_replica(SiteId{s}, obj)) hosts.push_back(SiteId{s});
        }
        if (hosts.size() < 2) continue;
        for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
          sys.sync(hosts[i + 1], hosts[i], obj);
          ++stats.syncs;
        }
        for (std::size_t i = hosts.size() - 1; i > 0; --i) {
          sys.sync(hosts[i - 1], hosts[i], obj);
          ++stats.syncs;
        }
        if (!sys.replicas_consistent(obj)) all_consistent = false;
      }
      stats.anti_entropy_rounds = round + 1;
      if (all_consistent) break;
    }
  }
  stats.eventually_consistent = true;
  for (std::uint32_t o = 0; o < trace.n_objects; ++o) {
    if (!sys.replicas_consistent(ObjectId{o})) stats.eventually_consistent = false;
  }
  return stats;
}

}  // namespace optrep::wl
