// Scenario scripts: phase sequences driving a sim::ScenarioWorld (large-world
// gossip engine) — warmup writes, bounded gossip, quiesce-to-convergence,
// churn, partition/heal, flash crowds — plus the optrep.run/v1 report for a
// finished run. Shared by the `optrep_cli scenario` subcommand, the
// scenario-smoke CI job, and bench_scenario, so convergence numbers in
// committed baselines and ad-hoc runs come from one driver.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/timeline.h"
#include "sim/scenario.h"

namespace optrep::wl {

// One phase of a scenario script.
struct PhaseSpec {
  enum class Kind : std::uint8_t {
    kWarmup,     // a = updates issued via the writer pool (no gossip)
    kGossip,     // a = exact number of gossip rounds to run
    kQuiesce,    // gossip until no site is dirty; a = round cap (0 = auto)
    kChurn,      // a = sites taken offline, b = rounds they stay down
    kPartition,  // split the world into halves (blocks cross edges)
    kHeal,       // re-join the halves (dirties the boundary)
    kFlash,      // a = one-shot writers spread over the mesh, one update each
  };
  Kind kind{Kind::kQuiesce};
  std::uint32_t a{0};
  std::uint32_t b{0};
};

// Parse a script: either a named preset ("converge", "partition-heal",
// "churn", "flash-crowd") or a comma-separated phase list like
// "warmup:64,quiesce,partition,warmup:32,quiesce,heal,quiesce".
// `sites` scales the presets' churn magnitude. Returns false (with a
// diagnostic in `error`) on malformed input — the CLI turns that into a
// usage error rather than a crash.
bool parse_scenario_script(std::string_view script, std::uint32_t sites,
                           std::vector<PhaseSpec>& out, std::string& error);

// Σ flash-phase writers across the script: the vector-width headroom a world
// running it needs as ScenarioWorld::Config::extra_writers.
std::uint32_t scenario_flash_writers(const std::vector<PhaseSpec>& phases);

struct ScenarioStats {
  sim::ScenarioWorld::Totals totals{};
  bool converged{false};
  // Round counter value when the world (re-)converged after its last update;
  // 0 when it never diverged or never converged.
  std::uint64_t convergence_rounds{0};
  // True when some quiesce phase hit its round cap with sites still dirty.
  bool quiesce_truncated{false};

  vv::Arena::Stats arena{};
  std::uint64_t replica_bytes{0};
  std::uint64_t mesh_bytes{0};
};

// Execute the phases on the world. With a timeline, samples the world's full
// registry (scenario.* and rt.arena.* included) every `sample_every` rounds
// on a "rounds" axis. `quiesce_cap` bounds cap-less quiesce phases
// (0 → 4·sites + 64). Publishes final metrics into world.metrics(), so a
// report written afterwards sees up-to-date instruments.
ScenarioStats run_scenario(sim::ScenarioWorld& world, const std::vector<PhaseSpec>& phases,
                           obs::Timeline* timeline = nullptr,
                           std::uint32_t sample_every = 64, std::uint32_t quiesce_cap = 0);

// optrep.run/v1 document (command "scenario") for a finished run. Call after
// run_scenario — the exporter reads the registry run_scenario published.
std::string scenario_run_report_json(const sim::ScenarioWorld& world, std::string_view script,
                                     const ScenarioStats& stats);

}  // namespace optrep::wl
