// Workload traces: deterministic event sequences driving a replication
// system, plus drivers that execute them on StateSystem / OpSystem and
// collect statistics.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "repl/op_system.h"
#include "repl/state_system.h"

namespace optrep::wl {

struct Event {
  enum class Type : std::uint8_t { kCreate, kUpdate, kSync };
  Type type{Type::kUpdate};
  SiteId site{};   // acting site (receiver for kSync)
  SiteId peer{};   // kSync: the sender
  ObjectId obj{};
};

// How sync partners are chosen.
enum class Topology : std::uint8_t {
  kRandomGossip,  // uniformly random peer
  kRing,          // neighbours on a ring
  kStar,          // everyone syncs with a hub (site 0)
  kClustered,     // mostly intra-cluster, occasional cross-cluster bridges
};

constexpr const char* to_string(Topology t) {
  switch (t) {
    case Topology::kRandomGossip: return "gossip";
    case Topology::kRing: return "ring";
    case Topology::kStar: return "star";
    case Topology::kClustered: return "clustered";
  }
  return "?";
}

struct GeneratorConfig {
  std::uint32_t n_sites{8};
  std::uint32_t n_objects{1};
  std::uint32_t steps{1000};
  double update_prob{0.5};  // P(update); otherwise a sync event
  Topology topology{Topology::kRandomGossip};
  // Fraction of updates directed at the hot subset of sites (update skew).
  double locality{0.0};
  std::uint32_t hot_sites{1};
  std::uint32_t cluster_size{4};     // kClustered
  double bridge_prob{0.1};           // kClustered: cross-cluster sync chance
  std::uint64_t seed{1};
};

struct Trace {
  std::uint32_t n_sites{0};
  std::uint32_t n_objects{0};
  std::vector<Event> events;
  // Provenance tags carried into exported run reports: which scenario built
  // the trace, and the full generator configuration (seed, topology, skew).
  std::string scenario{"generate"};
  GeneratorConfig config{};
};

Trace generate(const GeneratorConfig& cfg);

// Paper-motivated scenarios.
// §4: a replicated append-only log — every site writes constantly, so almost
// every sync is a syntactic conflict (the SRV motivating case).
Trace append_only_log(std::uint32_t n_sites, std::uint32_t steps, std::uint64_t seed);
// [10]: a DTN/mobile participatory data store — many small objects, sparse
// opportunistic pairwise contacts.
Trace dtn_store(std::uint32_t n_sites, std::uint32_t n_objects, std::uint32_t steps,
                std::uint64_t seed);
// [8]: multi-regional collaboration — clustered sites, frequent local syncs,
// rare cross-region bridges.
Trace collaboration(std::uint32_t n_sites, std::uint32_t steps, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

struct RunStats {
  std::uint64_t updates{0};
  std::uint64_t syncs{0};
  std::uint64_t skipped{0};
  std::uint64_t conflicts{0};
  bool eventually_consistent{false};
  std::uint32_t anti_entropy_rounds{0};
};

// Execute the trace, then (optionally) run anti-entropy sweeps until every
// object is consistent everywhere (eventual consistency, §2.1).
RunStats run_state(repl::StateSystem& sys, const Trace& trace, bool drive_to_consistency = true);
RunStats run_op(repl::OpSystem& sys, const Trace& trace, bool drive_to_consistency = true);

// run_state through the sharded wave engine (StateSystem::run_batch): the
// trace becomes one batch, each anti-entropy sweep another, with
// replica-disjoint sessions running on `pool`'s workers. Output is
// byte-identical across thread counts, and on fault-free runs final replica
// state, totals, and RunStats are identical to run_state's by the wave
// equivalence argument (rt/shard.h); under active fault injection the
// engines agree on protocol outcomes but draw different (equally
// deterministic) fault streams — see StateSystem::run_batch.
// Requires automatic resolution and none of the sequential
// per-session instruments (tracer / recorder / timeline); causal tracing is
// supported. `batch_stats`, when non-null, accumulates wave and
// optimistic-lock statistics across every batch the driver issues.
RunStats run_state_parallel(repl::StateSystem& sys, const Trace& trace,
                            rt::ThreadPool& pool,
                            bool drive_to_consistency = true,
                            repl::StateSystem::BatchStats* batch_stats = nullptr);

}  // namespace optrep::wl
