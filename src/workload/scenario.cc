#include "workload/scenario.h"

#include <algorithm>
#include <charconv>

#include "obs/export.h"

namespace optrep::wl {

namespace {

std::string_view mode_string(vv::TransferMode m) {
  switch (m) {
    case vv::TransferMode::kPipelined: return "pipelined";
    case vv::TransferMode::kStopAndWait: return "saw";
    case vv::TransferMode::kIdeal: return "ideal";
  }
  return "?";
}

bool parse_u32(std::string_view s, std::uint32_t& out) {
  if (s.empty()) return false;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

// Split "name:a:b" into up to three fields.
struct Token {
  std::string_view name;
  std::string_view a;
  std::string_view b;
  std::size_t parts{1};
};

Token split_token(std::string_view t) {
  Token tok;
  const std::size_t c1 = t.find(':');
  if (c1 == std::string_view::npos) {
    tok.name = t;
    return tok;
  }
  tok.name = t.substr(0, c1);
  const std::size_t c2 = t.find(':', c1 + 1);
  if (c2 == std::string_view::npos) {
    tok.a = t.substr(c1 + 1);
    tok.parts = 2;
  } else {
    tok.a = t.substr(c1 + 1, c2 - c1 - 1);
    tok.b = t.substr(c2 + 1);
    tok.parts = 3;
  }
  return tok;
}

bool expand_preset(std::string_view script, std::uint32_t sites,
                   std::vector<PhaseSpec>& out) {
  using K = PhaseSpec::Kind;
  // Churn magnitude scales with the world; flash crowds stay bounded so the
  // vector-width headroom they imply does not grow with n.
  const std::uint32_t churn = std::max<std::uint32_t>(1, sites / 16);
  if (script == "converge") {
    out = {{K::kWarmup, 64, 0}, {K::kQuiesce, 0, 0}};
  } else if (script == "partition-heal") {
    out = {{K::kWarmup, 32, 0}, {K::kQuiesce, 0, 0}, {K::kPartition, 0, 0},
           {K::kWarmup, 32, 0}, {K::kQuiesce, 0, 0}, {K::kHeal, 0, 0},
           {K::kQuiesce, 0, 0}};
  } else if (script == "churn") {
    out = {{K::kWarmup, 32, 0}, {K::kChurn, churn, 32}, {K::kQuiesce, 0, 0}};
  } else if (script == "flash-crowd") {
    out = {{K::kWarmup, 16, 0},
           {K::kQuiesce, 0, 0},
           {K::kFlash, std::min<std::uint32_t>(64, sites), 0},
           {K::kQuiesce, 0, 0}};
  } else {
    return false;
  }
  return true;
}

}  // namespace

bool parse_scenario_script(std::string_view script, std::uint32_t sites,
                           std::vector<PhaseSpec>& out, std::string& error) {
  out.clear();
  if (script.empty()) {
    error = "empty scenario script";
    return false;
  }
  if (expand_preset(script, sites, out)) return true;

  std::size_t pos = 0;
  while (pos <= script.size()) {
    const std::size_t comma = script.find(',', pos);
    const std::string_view raw =
        script.substr(pos, comma == std::string_view::npos ? script.size() - pos
                                                           : comma - pos);
    pos = comma == std::string_view::npos ? script.size() + 1 : comma + 1;
    const Token tok = split_token(raw);
    PhaseSpec p;
    auto need_count = [&](std::string_view what, PhaseSpec::Kind kind) {
      if (tok.parts != 2 || !parse_u32(tok.a, p.a) || p.a == 0) {
        error = std::string("phase '") + std::string(tok.name) + "' needs " +
                std::string(what) + " (got '" + std::string(raw) + "')";
        return false;
      }
      p.kind = kind;
      return true;
    };
    if (tok.name == "warmup") {
      if (!need_count("an update count", PhaseSpec::Kind::kWarmup)) return false;
    } else if (tok.name == "gossip") {
      if (!need_count("a round count", PhaseSpec::Kind::kGossip)) return false;
    } else if (tok.name == "flash") {
      if (!need_count("a writer count", PhaseSpec::Kind::kFlash)) return false;
    } else if (tok.name == "quiesce") {
      p.kind = PhaseSpec::Kind::kQuiesce;
      if (tok.parts >= 2 && (!parse_u32(tok.a, p.a) || tok.parts != 2)) {
        error = "quiesce takes an optional round cap (got '" + std::string(raw) + "')";
        return false;
      }
    } else if (tok.name == "churn") {
      if (tok.parts != 3 || !parse_u32(tok.a, p.a) || !parse_u32(tok.b, p.b) ||
          p.a == 0 || p.b == 0) {
        error = "churn needs offline-count and rounds, churn:K:R (got '" +
                std::string(raw) + "')";
        return false;
      }
      p.kind = PhaseSpec::Kind::kChurn;
    } else if (tok.name == "partition") {
      if (tok.parts != 1) {
        error = "partition takes no arguments (got '" + std::string(raw) + "')";
        return false;
      }
      p.kind = PhaseSpec::Kind::kPartition;
    } else if (tok.name == "heal") {
      if (tok.parts != 1) {
        error = "heal takes no arguments (got '" + std::string(raw) + "')";
        return false;
      }
      p.kind = PhaseSpec::Kind::kHeal;
    } else {
      error = "unknown phase '" + std::string(tok.name) +
              "' (expected warmup/gossip/quiesce/churn/partition/heal/flash "
              "or a preset: converge, partition-heal, churn, flash-crowd)";
      return false;
    }
    out.push_back(p);
  }
  return true;
}

std::uint32_t scenario_flash_writers(const std::vector<PhaseSpec>& phases) {
  std::uint32_t total = 0;
  for (const PhaseSpec& p : phases) {
    if (p.kind == PhaseSpec::Kind::kFlash) total += p.a;
  }
  return total;
}

ScenarioStats run_scenario(sim::ScenarioWorld& world, const std::vector<PhaseSpec>& phases,
                           obs::Timeline* timeline, std::uint32_t sample_every,
                           std::uint32_t quiesce_cap) {
  ScenarioStats stats;
  if (sample_every == 0) sample_every = 1;
  if (quiesce_cap == 0) quiesce_cap = 4 * world.config().sites + 64;
  if (timeline != nullptr) timeline->set_axis("rounds");

  bool convergence_seen = world.converged();
  const auto sample = [&](bool with_memory) {
    if (timeline == nullptr) return;
    world.publish_metrics();
    if (with_memory) world.publish_memory_metrics();
    timeline->begin_sample(static_cast<double>(world.totals().rounds));
    timeline->sample_registry(world.metrics());
  };
  const auto after_round = [&] {
    if (!convergence_seen && world.converged()) {
      convergence_seen = true;
      stats.convergence_rounds = world.totals().rounds;
    }
    if (world.totals().rounds % sample_every == 0) sample(true);
  };
  const auto run_rounds = [&](std::uint32_t rounds) {
    for (std::uint32_t r = 0; r < rounds; ++r) {
      world.gossip_round();
      after_round();
    }
  };

  for (const PhaseSpec& p : phases) {
    switch (p.kind) {
      case PhaseSpec::Kind::kWarmup:
        for (std::uint32_t u = 0; u < p.a; ++u) {
          world.local_update(world.next_writer());
          convergence_seen = false;
        }
        break;
      case PhaseSpec::Kind::kGossip:
        run_rounds(p.a);
        break;
      case PhaseSpec::Kind::kQuiesce: {
        const std::uint32_t cap = p.a != 0 ? p.a : quiesce_cap;
        std::uint32_t r = 0;
        for (; r < cap && world.dirty_count() > 0; ++r) {
          world.gossip_round();
          after_round();
        }
        if (world.dirty_count() > 0) stats.quiesce_truncated = true;
        break;
      }
      case PhaseSpec::Kind::kChurn:
        world.take_offline(p.a);
        run_rounds(p.b);
        world.bring_online();
        break;
      case PhaseSpec::Kind::kPartition:
        world.set_partitioned(true);
        break;
      case PhaseSpec::Kind::kHeal:
        world.set_partitioned(false);
        break;
      case PhaseSpec::Kind::kFlash:
        for (std::uint32_t j = 0; j < p.a; ++j) {
          world.local_update(world.flash_site(j, p.a));
          convergence_seen = false;
        }
        break;
    }
  }

  // Final instruments: always published (report exporters read them), final
  // timeline sample included when sampling.
  world.publish_metrics();
  world.publish_memory_metrics();
  if (timeline != nullptr) {
    timeline->begin_sample(static_cast<double>(world.totals().rounds));
    timeline->sample_registry(world.metrics());
  }

  stats.totals = world.totals();
  stats.converged = world.converged();
  if (!stats.converged) stats.convergence_rounds = 0;
  stats.arena = world.arena_stats();
  stats.replica_bytes = world.replica_memory_bytes();
  stats.mesh_bytes = world.mesh().memory_bytes();
  return stats;
}

std::string scenario_run_report_json(const sim::ScenarioWorld& world, std::string_view script,
                                     const ScenarioStats& stats) {
  const sim::ScenarioWorld::Config& cfg = world.config();
  const sim::ScenarioWorld::Totals& t = stats.totals;
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "optrep.run/v1");
  w.field("command", "scenario");
  w.field("algo", sim::to_string(cfg.algo));
  w.field("mode", mode_string(cfg.mode));
  w.key("workload").begin_object();
  w.field("sites", std::uint64_t{cfg.sites});
  w.field("writers", std::uint64_t{cfg.writers});
  w.field("mesh", sim::to_string(cfg.mesh));
  w.field("degree", std::uint64_t{cfg.degree});
  w.field("edges", world.mesh().edge_count());
  w.field("script", script);
  w.field("seed", cfg.seed);
  w.end_object();
  w.key("run").begin_object();
  w.field("rounds", t.rounds);
  w.field("updates", t.updates);
  w.field("compares", t.compares);
  w.field("sessions", t.sessions);
  w.field("reconciliations", t.reconciliations);
  w.field("conflicts_held", t.conflicts_held);
  w.field("converged", stats.converged);
  w.field("convergence_rounds", stats.convergence_rounds);
  w.field("quiesce_truncated", stats.quiesce_truncated);
  w.end_object();
  w.key("totals").begin_object();
  w.field("bits", t.bits);
  w.field("wire_bytes", t.wire_bytes);
  w.field("msgs", t.msgs);
  w.field("elems_applied", t.elems_applied);
  w.field("nodes_applied", t.nodes_applied);
  w.end_object();
  w.key("memory").begin_object();
  w.field("arena_reserved_bytes", stats.arena.reserved_bytes);
  w.field("arena_live_bytes", stats.arena.live_bytes);
  w.field("arena_retired_bytes", stats.arena.retired_bytes);
  w.field("arena_high_water_bytes", stats.arena.high_water_bytes);
  w.field("arena_slabs", stats.arena.slabs);
  w.field("replica_bytes", stats.replica_bytes);
  w.field("mesh_bytes", stats.mesh_bytes);
  w.end_object();
  w.key("metrics");
  obs::write_metrics(w, world.metrics());
  w.end_object();
  return w.take();
}

}  // namespace optrep::wl
