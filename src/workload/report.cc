#include "workload/report.h"

#include "obs/export.h"

namespace optrep::wl {

namespace {

std::string_view to_string(vv::TransferMode m) {
  switch (m) {
    case vv::TransferMode::kPipelined: return "pipelined";
    case vv::TransferMode::kStopAndWait: return "saw";
    case vv::TransferMode::kIdeal: return "ideal";
  }
  return "?";
}

void write_workload(obs::JsonWriter& w, const Trace& trace) {
  const GeneratorConfig& g = trace.config;
  w.key("workload").begin_object();
  w.field("scenario", trace.scenario);
  w.field("sites", std::uint64_t{trace.n_sites});
  w.field("objects", std::uint64_t{trace.n_objects});
  w.field("steps", std::uint64_t{g.steps});
  w.field("update_prob", g.update_prob);
  w.field("topology", wl::to_string(g.topology));
  w.field("locality", g.locality);
  w.field("seed", g.seed);
  w.end_object();
}

void write_run_stats(obs::JsonWriter& w, const RunStats& s) {
  w.key("run").begin_object();
  w.field("updates", s.updates);
  w.field("syncs", s.syncs);
  w.field("skipped", s.skipped);
  w.field("conflicts", s.conflicts);
  w.field("anti_entropy_rounds", std::uint64_t{s.anti_entropy_rounds});
  w.field("eventually_consistent", s.eventually_consistent);
  w.end_object();
}

void write_metrics_field(obs::JsonWriter& w, const obs::Registry& reg) {
  w.key("metrics");
  obs::write_metrics(w, reg);
}

// Fault-injection tags + recovery totals. Emitted only when faults are
// configured, so lossless reports stay byte-identical to earlier schemas.
void write_faults(obs::JsonWriter& w, const sim::NetConfig& net, std::uint64_t retries,
                  std::uint64_t sync_failures, std::uint64_t faults_injected,
                  std::uint64_t recovery_bits) {
  if (!net.faults.enabled()) return;
  const auto& f = net.faults;
  w.key("faults").begin_object();
  w.field("loss", f.drop);
  w.field("dup", f.duplicate);
  w.field("reorder", f.reorder);
  w.field("corrupt", f.corrupt);
  w.field("fault_seed", f.seed);
  w.field("injected", faults_injected);
  w.field("retries", retries);
  w.field("sync_failures", sync_failures);
  w.field("recovery_bits", recovery_bits);
  w.end_object();
}

}  // namespace

std::string state_run_report_json(const repl::StateSystem& sys, const Trace& trace,
                                  const RunStats& stats) {
  const auto& cfg = sys.config();
  const auto& t = sys.totals();
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "optrep.run/v1");
  w.field("command", "state");
  w.field("kind", vv::to_string(cfg.kind));
  w.field("mode", to_string(cfg.mode));
  w.field("policy", cfg.policy == repl::ResolutionPolicy::kManual ? "manual" : "automatic");
  write_workload(w, trace);
  write_run_stats(w, stats);
  w.key("totals").begin_object();
  w.field("sessions", t.sessions);
  w.field("bits", t.bits);
  w.field("bytes", t.bytes);
  w.field("msgs", t.msgs);
  w.field("payload_bytes", t.payload_bytes);
  w.field("elems_sent", t.elems_sent);
  w.field("elems_applied", t.elems_applied);
  w.field("elems_redundant", t.elems_redundant);
  w.field("segments_skipped", t.skips);
  w.field("conflicts_detected", t.conflicts_detected);
  w.field("reconciliations", t.reconciliations);
  w.end_object();
  w.key("table2").begin_object();
  w.field("upper_bound_bits_per_session", obs::table2_upper_bound_bits(cfg.cost, cfg.kind));
  w.field("bound_violations", t.bound_violations);
  w.end_object();
  const repl::StateSystem::MemoryStats mem = sys.memory_stats();
  w.key("memory").begin_object();
  w.field("replicas", mem.replicas);
  w.field("vector_bytes", mem.vector_bytes);
  w.field("index_bytes", mem.index_bytes);
  w.end_object();
  write_faults(w, cfg.net, t.retries, t.sync_failures, t.faults_injected, t.recovery_bits);
  write_metrics_field(w, sys.metrics());
  w.end_object();
  return w.take();
}

std::string op_run_report_json(const repl::OpSystem& sys, const Trace& trace,
                               const RunStats& stats) {
  const auto& cfg = sys.config();
  const auto& t = sys.totals();
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "optrep.run/v1");
  w.field("command", "op");
  w.field("algo", cfg.use_incremental ? "syncg" : "full");
  w.field("mode", to_string(cfg.mode));
  w.field("op_log_limit", std::uint64_t{cfg.op_log_limit});
  write_workload(w, trace);
  write_run_stats(w, stats);
  w.key("totals").begin_object();
  w.field("sessions", t.sessions);
  w.field("bits", t.bits);
  w.field("bytes", t.bytes);
  w.field("nodes_sent", t.nodes_sent);
  w.field("nodes_redundant", t.nodes_redundant);
  w.field("op_bytes", t.op_bytes);
  w.field("reconciliations", t.reconciliations);
  w.field("state_fallbacks", t.state_fallbacks);
  w.field("state_fallback_bytes", t.state_fallback_bytes);
  w.end_object();
  write_metrics_field(w, sys.metrics());
  w.end_object();
  return w.take();
}

std::string records_run_report_json(const repl::RecordSystem& sys,
                                    const RecordsRunTags& tags) {
  const auto& cfg = sys.config();
  const auto& t = sys.totals();
  obs::JsonWriter w;
  w.begin_object();
  w.field("schema", "optrep.run/v1");
  w.field("command", "records");
  w.field("kind", vv::to_string(cfg.kind));
  w.field("mode", to_string(cfg.mode));
  w.field("policy", cfg.policy == repl::SemanticPolicy::kFlag ? "flag" : "lww");
  w.key("workload").begin_object();
  w.field("sites", std::uint64_t{tags.sites});
  w.field("steps", std::uint64_t{tags.steps});
  w.field("update_prob", tags.update_prob);
  w.field("overlap", tags.overlap);
  w.field("key_pool", std::uint64_t{tags.key_pool});
  w.field("seed", tags.seed);
  w.end_object();
  w.key("totals").begin_object();
  w.field("sessions", t.sessions);
  w.field("bits", t.bits);
  w.field("syntactic_conflicts", t.syntactic_conflicts);
  w.field("syntactic_only", t.syntactic_only);
  w.field("semantic_conflicts", t.semantic_conflicts);
  w.field("records_merged", t.records_merged);
  w.field("flagged_records", t.flagged_records);
  w.end_object();
  w.key("table2").begin_object();
  w.field("upper_bound_bits_per_session", obs::table2_upper_bound_bits(cfg.cost, cfg.kind));
  w.field("bound_violations", t.bound_violations);
  w.end_object();
  write_faults(w, cfg.net, t.retries, t.sync_failures, t.faults_injected, t.recovery_bits);
  write_metrics_field(w, sys.metrics());
  w.end_object();
  return w.take();
}

}  // namespace optrep::wl
