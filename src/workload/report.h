// Machine-readable run reports (schema optrep.run/v1, see
// docs/OBSERVABILITY.md): one JSON document per workload run, carrying the
// workload tags (scenario, seed, topology), driver statistics, system totals
// — including γ/|Δ| accounting and Table 2 bound checks — and the system's
// full metrics registry.
//
// The CLI and the determinism tests share these builders, so "two same-seed
// runs export byte-identical JSON" is a property of one function, not of two
// hand-kept copies.
#pragma once

#include <string>

#include "repl/op_system.h"
#include "repl/record_system.h"
#include "repl/state_system.h"
#include "workload/trace.h"

namespace optrep::wl {

std::string state_run_report_json(const repl::StateSystem& sys, const Trace& trace,
                                  const RunStats& stats);

std::string op_run_report_json(const repl::OpSystem& sys, const Trace& trace,
                               const RunStats& stats);

// The record-store workload is not trace-driven; its parameters arrive as
// explicit tags.
struct RecordsRunTags {
  std::uint32_t sites{0};
  std::uint32_t steps{0};
  double update_prob{0};
  double overlap{0};
  std::uint32_t key_pool{0};
  std::uint64_t seed{0};
};
std::string records_run_report_json(const repl::RecordSystem& sys,
                                    const RecordsRunTags& tags);

}  // namespace optrep::wl
