#include "net/replica_store.h"

#include "common/check.h"

namespace optrep::net {

namespace {

constexpr unsigned kSnapshotTries = 8;

// Rebuild *out from a front→back element walk: rotate each element into
// place behind the previous one, then write its payload. This is the same
// splice discipline the receiver cores use, so it reproduces order, values
// and both bit planes exactly.
void rebuild(vv::RotatingVector* out, const std::vector<vv::RotatingVector::Element>& elems,
             std::size_t reserve) {
  *out = vv::RotatingVector{};
  out->reserve(reserve);
  std::optional<SiteId> prev;
  for (const auto& e : elems) {
    out->rotate_after(prev, e.site);
    out->set_element(e.site, e.value, e.conflict, e.segment);
    prev = e.site;
  }
}

}  // namespace

ReplicaStore::ReplicaStore(const Config& cfg) : cfg_(cfg) {
  OPTREP_CHECK_MSG(cfg_.replicas > 0, "replica store needs at least one replica");
  OPTREP_CHECK_MSG(cfg_.site_capacity >= cfg_.replicas,
                   "site capacity below the replica count cannot hold own sites");
  slots_.reserve(cfg_.replicas);
  for (std::uint32_t r = 0; r < cfg_.replicas; ++r) {
    auto slot = std::make_unique<Slot>();
    // Pin the arrays: mutations must never reallocate while optimistic
    // readers hold pointers into the tables (rotating_vector.h contract).
    slot->vec.reserve(cfg_.site_capacity);
    for (std::uint32_t u = 0; u < cfg_.prefill_updates; ++u) {
      slot->vec.record_update(own_site(r));
    }
    slots_.push_back(std::move(slot));
  }
}

void ReplicaStore::snapshot(std::uint32_t r, vv::RotatingVector* out) const {
  OPTREP_CHECK(r < slots_.size());
  const vv::RotatingVector& v = slots_[r]->vec;
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  std::vector<vv::RotatingVector::Element> elems;
  // An invalid interleaving can present a cycle in the ≺ links; the walk is
  // step-capped so it terminates, and validation rejects the torn result.
  const std::size_t step_cap = cfg_.site_capacity + 1;
  for (unsigned t = 0; t < kSnapshotTries; ++t) {
    const std::uint64_t snap = v.olock().read_begin();
    elems.clear();
    std::size_t steps = 0;
    bool bounded = true;
    for (auto it = v.begin(); it != v.end(); ++it) {
      if (++steps > step_cap) {
        bounded = false;
        break;
      }
      elems.push_back(*it);
    }
    if (bounded && v.olock().read_validate(snap)) {
      rebuild(out, elems, cfg_.site_capacity);
      return;
    }
    snapshot_retries_.fetch_add(1, std::memory_order_relaxed);
  }
  // Persistent interference: join the writer queue; exclusive access also
  // excludes writers, so a plain walk is consistent.
  snapshot_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  rt::OLockGuard g(v.olock());
  elems = v.in_order();
  rebuild(out, elems, cfg_.site_capacity);
}

bool ReplicaStore::commit(std::uint32_t r, const vv::RotatingVector& src) {
  OPTREP_CHECK(r < slots_.size());
  if (src.size() > cfg_.site_capacity) {
    capacity_rejects_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // src is session-private — plain reads are safe outside the slot lock.
  const auto elems = src.in_order();
  vv::RotatingVector& dst = slots_[r]->vec;
  rt::OLockGuard g(dst.olock());
  // Clear and replay in place: erase/rotate/set go through the vector's
  // release-store mutators and, under the pinned capacity, never reallocate.
  while (const auto f = dst.front()) dst.erase(f->site);
  std::optional<SiteId> prev;
  for (const auto& e : elems) {
    dst.rotate_after(prev, e.site);
    dst.set_element(e.site, e.value, e.conflict, e.segment);
    prev = e.site;
  }
  commits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ReplicaStore::acquire_write(std::uint32_t r, Waiter w) {
  OPTREP_CHECK(r < slots_.size());
  Slot& s = *slots_[r];
  std::lock_guard<std::mutex> g(s.mu);
  if (!s.busy) {
    s.busy = true;
    return true;
  }
  s.waiters.push_back(w);
  write_parks_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

std::optional<ReplicaStore::Waiter> ReplicaStore::release_write(std::uint32_t r) {
  OPTREP_CHECK(r < slots_.size());
  Slot& s = *slots_[r];
  std::lock_guard<std::mutex> g(s.mu);
  OPTREP_CHECK_MSG(s.busy, "release of an unowned write ticket");
  if (s.waiters.empty()) {
    s.busy = false;
    return std::nullopt;
  }
  const Waiter next = s.waiters.front();
  s.waiters.pop_front();
  return next;  // slot stays busy: ownership transferred
}

bool ReplicaStore::cancel_wait(std::uint32_t r, Waiter w) {
  OPTREP_CHECK(r < slots_.size());
  Slot& s = *slots_[r];
  std::lock_guard<std::mutex> g(s.mu);
  for (auto it = s.waiters.begin(); it != s.waiters.end(); ++it) {
    if (*it == w) {
      s.waiters.erase(it);
      return true;
    }
  }
  return false;
}

ReplicaStore::Counters ReplicaStore::counters() const {
  Counters c;
  c.snapshots = snapshots_.load(std::memory_order_relaxed);
  c.snapshot_retries = snapshot_retries_.load(std::memory_order_relaxed);
  c.snapshot_fallbacks = snapshot_fallbacks_.load(std::memory_order_relaxed);
  c.commits = commits_.load(std::memory_order_relaxed);
  c.capacity_rejects = capacity_rejects_.load(std::memory_order_relaxed);
  c.write_parks = write_parks_.load(std::memory_order_relaxed);
  return c;
}

rt::OLock::Counters ReplicaStore::olock_counters() const {
  rt::OLock::Counters sum;
  for (const auto& s : slots_) {
    const auto c = s->vec.olock().counters();
    sum.acquisitions += c.acquisitions;
    sum.opt_retries += c.opt_retries;
    sum.queue_waits += c.queue_waits;
  }
  return sum;
}

}  // namespace optrep::net
