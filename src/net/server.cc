#include "net/server.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <unordered_map>

#include "common/check.h"
#include "net/epoll_loop.h"
#include "net/session_util.h"
#include "net/wire_stream.h"
#include "rt/thread_pool.h"
#include "vv/order.h"
#include "vv/protocol/compare_core.h"

namespace optrep::net {

namespace {
constexpr std::uint64_t kListenerToken = 0;  // conn tokens start at 1
constexpr int kWaitMs = 100;                 // stop() poll granularity
}  // namespace

struct Server::AtomicStats {
  std::atomic<std::uint64_t> conns_accepted{0};
  std::atomic<std::uint64_t> conns_closed{0};
  std::atomic<std::uint64_t> hellos{0};
  std::atomic<std::uint64_t> bad_hellos{0};
  std::atomic<std::uint64_t> sessions_completed{0};
  std::atomic<std::uint64_t> sessions_aborted{0};
  std::atomic<std::uint64_t> compare_sessions{0};
  std::atomic<std::uint64_t> push_sessions{0};
  std::atomic<std::uint64_t> pull_sessions{0};
  std::atomic<std::uint64_t> commits{0};
  std::atomic<std::uint64_t> noops{0};
  std::atomic<std::uint64_t> capacity_rejects{0};
  std::atomic<std::uint64_t> parked{0};
  std::atomic<std::uint64_t> bytes_rx{0};
  std::atomic<std::uint64_t> bytes_tx{0};
  std::atomic<std::uint64_t> decode_errors{0};
  std::atomic<std::uint64_t> backpressure_pauses{0};
};

// One connection, owned by exactly one worker. The session fields are live
// between HELLO and END/DONE; `work` is the session-private replica clone
// that makes aborts free (drop it) and commits transactional (replay it).
struct Server::Conn {
  Fd fd;
  std::uint64_t token{0};

  StreamDecoder in;
  std::vector<std::uint8_t> out;
  std::size_t out_pos{0};
  vv::FrameDeltaState out_chain{};
  bool want_write{false};
  bool eof{false};
  bool close_after_flush{false};  // rejected HELLO: flush the status, drop

  enum class State : std::uint8_t {
    kPreamble,  // awaiting the connection magic
    kIdle,      // between sessions, awaiting HELLO
    kParked,    // push HELLO waiting on the replica's write ticket
    kCompare,   // ACCEPT+probe sent; awaiting peer probe/verdict
    kRecv,      // push transfer: feeding the receiver core
    kSend,      // pull transfer: pumping the sender core
    kAwaitEnd,  // no transfer on our receiving side; awaiting peer END
    kAwaitDone, // our END sent; awaiting peer DONE
  };
  State state{State::kPreamble};

  SessionKind kind{SessionKind::kCompare};
  bool pull{false};
  bool saw{false};  // stop-and-wait flow control
  std::uint32_t replica{0};
  bool owns_write{false};
  bool transfer{false};
  bool initially_concurrent{false};
  bool end_sent{false};
  bool pump_pending{false};
  DoneStatus pending_done{DoneStatus::kNoop};

  vv::RotatingVector work;
  std::optional<vv::protocol::CompareCore> cmp;
  bool probe_seen{false};
  std::optional<vv::protocol::ElementSenderCore> snd;
  std::optional<AnyReceiver> rx;
  vv::protocol::Actions acts;  // reused across dispatches

  std::size_t out_size() const { return out.size() - out_pos; }
};

struct Server::Worker {
  Worker(unsigned idx, bool et) : index(idx), loop(et) {}

  unsigned index;
  EpollLoop loop;

  // Cross-thread inbox: new connections from the acceptor, write-ticket
  // resumes from releasing workers. Drained after every wait().
  struct Task {
    int fd{-1};
    std::uint64_t token{0};
    std::uint32_t replica{0};
    bool is_resume{false};
  };
  std::mutex mu;
  std::vector<Task> inbox;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  std::uint64_t next_token{1};
};

Server::Server(const ServerConfig& cfg)
    : cfg_(cfg), store_(cfg.store), stats_(std::make_unique<AtomicStats>()) {
  if (cfg_.workers == 0) cfg_.workers = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string* err) {
  OPTREP_CHECK_MSG(!running_.load(), "server already started");
  listener_ = listen_tcp(cfg_.host, cfg_.port, cfg_.backlog, &port_, err);
  if (!listener_.valid()) return false;
  if (!set_nonblocking(listener_.get(), true)) {
    if (err) *err = "failed to set listener non-blocking";
    return false;
  }
  workers_.clear();
  for (unsigned w = 0; w < cfg_.workers; ++w) {
    workers_.push_back(std::make_unique<Worker>(w, cfg_.edge_triggered));
    if (!workers_.back()->loop.valid()) {
      if (err) *err = "failed to create epoll loop";
      workers_.clear();
      return false;
    }
  }
  workers_[0]->loop.add(listener_.get(), kListenerToken, /*want_read=*/true,
                        /*want_write=*/false);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  pool_thread_ = std::thread([this] {
    rt::ThreadPool pool(cfg_.workers);
    pool.for_each_index(cfg_.workers,
                        [this](std::size_t w) { worker_loop(static_cast<unsigned>(w)); });
  });
  return true;
}

void Server::stop() {
  if (!pool_thread_.joinable()) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->loop.wake();
  pool_thread_.join();
  running_.store(false, std::memory_order_release);
  listener_.reset();
}

ServerStats Server::stats() const {
  const AtomicStats& a = *stats_;
  ServerStats s;
  s.conns_accepted = a.conns_accepted.load(std::memory_order_relaxed);
  s.conns_closed = a.conns_closed.load(std::memory_order_relaxed);
  s.hellos = a.hellos.load(std::memory_order_relaxed);
  s.bad_hellos = a.bad_hellos.load(std::memory_order_relaxed);
  s.sessions_completed = a.sessions_completed.load(std::memory_order_relaxed);
  s.sessions_aborted = a.sessions_aborted.load(std::memory_order_relaxed);
  s.compare_sessions = a.compare_sessions.load(std::memory_order_relaxed);
  s.push_sessions = a.push_sessions.load(std::memory_order_relaxed);
  s.pull_sessions = a.pull_sessions.load(std::memory_order_relaxed);
  s.commits = a.commits.load(std::memory_order_relaxed);
  s.noops = a.noops.load(std::memory_order_relaxed);
  s.capacity_rejects = a.capacity_rejects.load(std::memory_order_relaxed);
  s.parked = a.parked.load(std::memory_order_relaxed);
  s.bytes_rx = a.bytes_rx.load(std::memory_order_relaxed);
  s.bytes_tx = a.bytes_tx.load(std::memory_order_relaxed);
  s.decode_errors = a.decode_errors.load(std::memory_order_relaxed);
  s.backpressure_pauses = a.backpressure_pauses.load(std::memory_order_relaxed);
  return s;
}

// ---- worker reactor --------------------------------------------------------

void Server::worker_loop(unsigned w) {
  Worker& wk = *workers_[w];
  std::vector<EpollLoop::Ready> ready;
  std::vector<Worker::Task> tasks;
  while (!stopping_.load(std::memory_order_acquire)) {
    wk.loop.wait(ready, kWaitMs);
    {
      std::lock_guard<std::mutex> g(wk.mu);
      tasks.swap(wk.inbox);
    }
    for (const auto& t : tasks) {
      if (t.is_resume) {
        resume_parked(wk, t.token, t.replica);
      } else {
        adopt_conn(wk, t.fd);
      }
    }
    tasks.clear();
    for (const auto& r : ready) {
      if (w == 0 && r.token == kListenerToken) {
        accept_ready();
        continue;
      }
      auto it = wk.conns.find(r.token);
      if (it == wk.conns.end()) continue;  // closed earlier this batch
      Conn& c = *it->second;
      if (r.error) {
        close_conn(wk, c);
        continue;
      }
      if (r.readable && !on_readable(wk, c)) continue;
      if (r.writable) {
        auto again = wk.conns.find(r.token);
        if (again != wk.conns.end()) on_writable(wk, *again->second);
      }
    }
  }
  wk.conns.clear();  // closes the fds; tickets die with the store
}

void Server::accept_ready() {
  for (;;) {
    const int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or transient accept failure
    }
    set_nonblocking(fd, true);
    set_nodelay(fd);
    stats_->conns_accepted.fetch_add(1, std::memory_order_relaxed);
    const unsigned target =
        next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
    if (target == 0) {
      adopt_conn(*workers_[0], fd);
    } else {
      Worker& wk = *workers_[target];
      {
        std::lock_guard<std::mutex> g(wk.mu);
        wk.inbox.push_back(Worker::Task{.fd = fd});
      }
      wk.loop.wake();
    }
  }
}

void Server::adopt_conn(Worker& wk, int fd) {
  auto c = std::make_unique<Conn>();
  c->fd = Fd(fd);
  c->token = wk.next_token++;
  if (!wk.loop.add(fd, c->token, /*want_read=*/true, /*want_write=*/false)) {
    stats_->conns_closed.fetch_add(1, std::memory_order_relaxed);
    return;  // c's destructor closes the fd
  }
  wk.conns.emplace(c->token, std::move(c));
}

void Server::post_resume(ReplicaStore::Waiter next, std::uint32_t replica) {
  Worker& wk = *workers_[next.worker];
  {
    std::lock_guard<std::mutex> g(wk.mu);
    wk.inbox.push_back(
        Worker::Task{.token = next.token, .replica = replica, .is_resume = true});
  }
  wk.loop.wake();
}

void Server::resume_parked(Worker& wk, std::uint64_t token, std::uint32_t replica) {
  auto it = wk.conns.find(token);
  if (it == wk.conns.end() || it->second->state != Conn::State::kParked) {
    // The waiter died after ownership transfer (cancel_wait returned false at
    // close): we hold the ticket on its behalf — pass it on.
    if (const auto next = store_.release_write(replica)) post_resume(*next, replica);
    return;
  }
  Conn& c = *it->second;
  c.owns_write = true;
  begin_session(wk, c);
  if (!dispatch_items(wk, c)) return;  // the HELLO-pipelined probe is queued
  finish_io(wk, c);
}

// ---- per-connection I/O ----------------------------------------------------

bool Server::on_readable(Worker& wk, Conn& c) {
  std::uint8_t buf[65536];
  for (;;) {  // drain to EAGAIN: required under edge triggering
    const ssize_t n = ::read(c.fd.get(), buf, sizeof buf);
    if (n > 0) {
      stats_->bytes_rx.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      c.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      c.eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(wk, c);
    return false;
  }
  if (!dispatch_items(wk, c)) return false;
  if (c.eof) {
    close_conn(wk, c);
    return false;
  }
  return finish_io(wk, c);
}

bool Server::on_writable(Worker& wk, Conn& c) { return finish_io(wk, c); }

// Flush the write buffer to EAGAIN. False on a hard socket error.
bool Server::flush_out(Conn& c) {
  while (c.out_size() > 0) {
    const ssize_t n = ::write(c.fd.get(), c.out.data() + c.out_pos, c.out_size());
    if (n > 0) {
      c.out_pos += static_cast<std::size_t>(n);
      stats_->bytes_tx.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    return false;
  }
  c.out.clear();
  c.out_pos = 0;
  return true;
}

// Run the sender pump / flush cycle until neither makes progress, then re-arm
// epoll write interest to match the remaining buffer.
bool Server::finish_io(Worker& wk, Conn& c) {
  for (;;) {
    if (c.state == Conn::State::kSend && c.pump_pending &&
        c.out_size() < cfg_.write_watermark) {
      pump_sender(c);
    }
    if (!flush_out(c)) {
      close_conn(wk, c);
      return false;
    }
    const bool can_pump = c.state == Conn::State::kSend && c.pump_pending &&
                          c.out_size() < cfg_.write_watermark;
    if (!can_pump) break;
  }
  if (c.close_after_flush && c.out_size() == 0) {
    close_conn(wk, c);
    return false;
  }
  const bool ww = c.out_size() > 0;
  if (ww != c.want_write) {
    c.want_write = ww;
    wk.loop.mod(c.fd.get(), c.token, /*want_read=*/true, ww);
  }
  return true;
}

void Server::pump_sender(Conn& c) {
  while (c.pump_pending && c.snd && !c.snd->done()) {
    if (c.out_size() >= cfg_.write_watermark) {
      stats_->backpressure_pauses.fetch_add(1, std::memory_order_relaxed);
      return;  // resume from on_writable once the buffer drains
    }
    c.pump_pending = false;
    step_sender(c, vv::protocol::Event::link_free());
  }
  if (c.snd && c.snd->done()) c.pump_pending = false;
}

void Server::step_sender(Conn& c, const vv::protocol::Event& ev) {
  c.acts.clear();
  c.snd->step(ev, c.acts);
  ActionSink sink{.out = &c.out, .chain = &c.out_chain};
  sink.apply(c.acts);
  c.pump_pending = c.pump_pending || sink.pump_requested;
  if (c.snd->done() && !c.end_sent) {
    put_end(c.out);
    c.end_sent = true;
    c.pump_pending = false;
    c.state = Conn::State::kAwaitDone;
  }
}

// ---- session state machine -------------------------------------------------

bool Server::dispatch_items(Worker& wk, Conn& c) {
  using IT = StreamDecoder::ItemType;
  for (;;) {
    if (c.state == Conn::State::kParked || c.close_after_flush) return true;
    const StreamDecoder::Item item = c.in.next();
    switch (item.type) {
      case IT::kNeedMore:
        return true;
      case IT::kError:
        stats_->decode_errors.fetch_add(1, std::memory_order_relaxed);
        close_conn(wk, c);
        return false;
      case IT::kMagic:
        if (c.state != Conn::State::kPreamble) {
          close_conn(wk, c);
          return false;
        }
        c.state = Conn::State::kIdle;
        break;
      case IT::kHello:
        if (c.state != Conn::State::kIdle) {
          close_conn(wk, c);
          return false;
        }
        handle_hello(wk, c, item);
        break;
      case IT::kMsg:
        handle_msg(c, item.msg);
        break;
      case IT::kEnd:
        if (!handle_end(wk, c)) return false;
        break;
      case IT::kDone:
        if (c.state != Conn::State::kAwaitDone) {
          close_conn(wk, c);
          return false;
        }
        if (item.status == static_cast<std::uint8_t>(DoneStatus::kNoop)) {
          stats_->noops.fetch_add(1, std::memory_order_relaxed);
        }
        end_session(c);
        break;
      case IT::kAccept:  // a server never receives ACCEPT
        close_conn(wk, c);
        return false;
    }
  }
}

void Server::handle_hello(Worker& wk, Conn& c, const StreamDecoder::Item& item) {
  stats_->hellos.fetch_add(1, std::memory_order_relaxed);
  c.kind = item.kind;
  c.pull = (item.flags & kHelloFlagPull) != 0;
  c.saw = (item.flags & kHelloFlagStopAndWait) != 0;
  c.replica = item.replica;

  AcceptStatus st = AcceptStatus::kOk;
  if (stopping_.load(std::memory_order_acquire)) {
    st = AcceptStatus::kShutdown;
  } else if (c.replica >= store_.replicas()) {
    st = AcceptStatus::kBadReplica;
  } else if (c.kind != SessionKind::kCompare &&
             vector_kind_of(c.kind) != store_.kind()) {
    st = AcceptStatus::kBadKind;
  }
  if (st != AcceptStatus::kOk) {
    stats_->bad_hellos.fetch_add(1, std::memory_order_relaxed);
    put_accept(c.out, st);
    c.close_after_flush = true;
    return;
  }

  // Push sessions own the replica's write ticket from before the snapshot to
  // after the commit — whole-session serialization (replica_store.h).
  const bool is_push = c.kind != SessionKind::kCompare && !c.pull;
  if (is_push &&
      !store_.acquire_write(c.replica, ReplicaStore::Waiter{wk.index, c.token})) {
    stats_->parked.fetch_add(1, std::memory_order_relaxed);
    c.state = Conn::State::kParked;  // ACCEPT deferred to resume_parked
    return;
  }
  c.owns_write = is_push;
  begin_session(wk, c);
}

void Server::begin_session(Worker&, Conn& c) {
  store_.snapshot(c.replica, &c.work);
  put_accept(c.out, AcceptStatus::kOk);
  c.out_chain = {};  // session boundary: the peer's decoder resets at ACCEPT
  c.transfer = false;
  c.initially_concurrent = false;
  c.end_sent = false;
  c.pump_pending = false;
  c.probe_seen = false;
  c.rx.reset();
  c.snd.reset();
  c.cmp.emplace(&c.work);
  c.acts.clear();
  c.cmp->step(vv::protocol::Event::start(), c.acts);  // our COMPARE probe
  ActionSink sink{.out = &c.out, .chain = &c.out_chain};
  sink.apply(c.acts);
  c.state = Conn::State::kCompare;
}

void Server::handle_msg(Conn& c, const vv::VvMsg& msg) {
  switch (c.state) {
    case Conn::State::kCompare: {
      c.acts.clear();
      c.cmp->step(vv::protocol::Event::msg_arrival(msg), c.acts);
      ActionSink sink{.out = &c.out, .chain = &c.out_chain};
      sink.apply(c.acts);
      if (msg.kind == vv::VvMsg::Kind::kProbe) c.probe_seen = true;
      // Complete = we answered their probe AND hold their verdict on ours.
      if (c.probe_seen && c.cmp->complete()) compare_done(c);
      return;
    }
    case Conn::State::kRecv: {
      c.acts.clear();
      c.rx->step(vv::protocol::Event::msg_arrival(msg), c.acts);
      ActionSink sink{.out = &c.out, .chain = &c.out_chain};
      sink.apply(c.acts);  // stop-and-wait ACKs / SYNCS SKIPs flow back
      return;
    }
    case Conn::State::kSend:
      step_sender(c, vv::protocol::Event::msg_arrival(msg));
      return;
    default:
      return;  // stray message: tolerated (protocol robustness contract)
  }
}

void Server::compare_done(Conn& c) {
  // Our verdict: this replica's vector vs the client's (Ordering::kBefore =
  // the client knows strictly more).
  const vv::Ordering rel = c.cmp->decide();
  if (c.kind == SessionKind::kCompare) {
    c.pending_done = DoneStatus::kNoop;
    c.state = Conn::State::kAwaitEnd;
    return;
  }
  const vv::VectorKind vk = vector_kind_of(c.kind);
  if (!c.pull) {
    // Push: we are the data receiver, so our relation IS the receiver's.
    if (transfer_needed(rel, vk)) {
      c.transfer = true;
      c.initially_concurrent = rel == vv::Ordering::kConcurrent;
      c.rx.emplace(vk, c.saw, &c.work, c.initially_concurrent);
      c.acts.clear();
      c.rx->step(vv::protocol::Event::start(), c.acts);
      ActionSink sink{.out = &c.out, .chain = &c.out_chain};
      sink.apply(c.acts);
      c.state = Conn::State::kRecv;
    } else {
      c.pending_done = DoneStatus::kNoop;  // =, covered, or BRV ‖ degrade
      c.state = Conn::State::kAwaitEnd;
    }
    return;
  }
  // Pull: the client receives; its relation is the flip of ours.
  if (transfer_needed(vv::flip(rel), vk)) {
    c.transfer = true;
    c.snd.emplace(sender_config(vk, c.saw, cfg_.burst), &c.work);
    c.state = Conn::State::kSend;
    step_sender(c, vv::protocol::Event::start());
  } else {
    put_end(c.out);
    c.end_sent = true;
    c.state = Conn::State::kAwaitDone;
  }
}

bool Server::handle_end(Worker& wk, Conn& c) {
  switch (c.state) {
    case Conn::State::kAwaitEnd:
      put_done(c.out, c.pending_done);
      if (c.pending_done == DoneStatus::kNoop) {
        stats_->noops.fetch_add(1, std::memory_order_relaxed);
      }
      release_ticket(c);
      end_session(c);
      return true;
    case Conn::State::kRecv: {
      // The commit point: everything before this is a receiver no-op.
      if (c.initially_concurrent) c.work.record_update(store_.own_site(c.replica));
      DoneStatus ds;
      if (store_.commit(c.replica, c.work)) {
        ds = DoneStatus::kCommitted;
        stats_->commits.fetch_add(1, std::memory_order_relaxed);
      } else {
        ds = DoneStatus::kCapacity;
        stats_->capacity_rejects.fetch_add(1, std::memory_order_relaxed);
      }
      put_done(c.out, ds);
      release_ticket(c);
      end_session(c);
      return true;
    }
    default:
      close_conn(wk, c);  // END outside a session half is a protocol breach
      return false;
  }
}

void Server::end_session(Conn& c) {
  stats_->sessions_completed.fetch_add(1, std::memory_order_relaxed);
  switch (c.kind) {
    case SessionKind::kCompare:
      stats_->compare_sessions.fetch_add(1, std::memory_order_relaxed);
      break;
    default:
      (c.pull ? stats_->pull_sessions : stats_->push_sessions)
          .fetch_add(1, std::memory_order_relaxed);
      break;
  }
  c.state = Conn::State::kIdle;
  c.cmp.reset();
  c.rx.reset();
  c.snd.reset();
  c.owns_write = false;
  c.transfer = false;
  c.end_sent = false;
  c.pump_pending = false;
}

void Server::release_ticket(Conn& c) {
  if (!c.owns_write) return;
  c.owns_write = false;
  if (const auto next = store_.release_write(c.replica)) post_resume(*next, c.replica);
}

void Server::close_conn(Worker& wk, Conn& c) {
  stats_->conns_closed.fetch_add(1, std::memory_order_relaxed);
  const bool mid_session =
      c.state != Conn::State::kPreamble && c.state != Conn::State::kIdle;
  if (mid_session) {
    stats_->sessions_aborted.fetch_add(1, std::memory_order_relaxed);
    if (c.state == Conn::State::kParked) {
      // cancel_wait false ⇒ a release already transferred the ticket to this
      // (now dead) waiter; its in-flight resume finds the token gone and
      // re-releases on our behalf (resume_parked).
      store_.cancel_wait(c.replica, ReplicaStore::Waiter{wk.index, c.token});
    } else {
      release_ticket(c);
    }
    // The private `work` clone is simply dropped: the live replica never saw
    // any of this session (the recovery invariant, structurally).
  }
  wk.loop.del(c.fd.get());
  const std::uint64_t token = c.token;
  wk.conns.erase(token);  // destroys c — nothing may touch it past here
}

}  // namespace optrep::net
