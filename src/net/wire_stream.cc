#include "net/wire_stream.h"

#include <cstring>

namespace optrep::net {

void StreamDecoder::append(const std::uint8_t* data, std::size_t n) {
  // Compact once the consumed prefix dominates the buffer — keeps the buffer
  // bounded by one in-flight record plus the decode-ahead window.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buf_.insert(buf_.end(), data, data + n);
}

StreamDecoder::Item StreamDecoder::next() {
  Item item;
  if (dead_) {
    item.type = ItemType::kError;
    return item;
  }
  if (!msgs_.empty()) {
    item.type = ItemType::kMsg;
    item.msg = msgs_.front();
    msgs_.pop_front();
    return item;
  }
  if (pos_ >= buf_.size()) return item;  // kNeedMore

  // Control record at the cursor? Fixed layouts, so completeness is a length
  // check; anything else goes through the codec.
  const std::uint8_t head = buf_[pos_];
  if (head == kCtlHello || head == kCtlAccept || head == kCtlEnd || head == kCtlDone ||
      head == kMagic[0]) {
    return pull_control();
  }

  std::vector<vv::VvMsg> decoded;
  const auto err = vv::frame_decode_stream(buf_.data(), buf_.size(), &pos_, &chain_, &decoded);
  for (const vv::VvMsg& m : decoded) msgs_.push_back(m);
  switch (err) {
    case vv::FrameDecodeError::kNone:
    case vv::FrameDecodeError::kTruncated:
      break;  // control tag handling below is unreachable here; fall through
    case vv::FrameDecodeError::kUnknownTag:
      // The codec parked *pos on the foreign byte: either one of our control
      // tags (handled on the next pull) or stream corruption.
      if (msgs_.empty()) {
        const std::uint8_t tag = buf_[pos_];
        if (tag != kCtlHello && tag != kCtlAccept && tag != kCtlEnd && tag != kCtlDone &&
            tag != kMagic[0]) {
          dead_ = true;
          item.type = ItemType::kError;
          return item;
        }
        return next();  // re-enter the control path
      }
      break;
    case vv::FrameDecodeError::kVarintOverflow:
      dead_ = true;
      if (msgs_.empty()) {
        item.type = ItemType::kError;
        return item;
      }
      break;  // drain what decoded first; the error resurfaces after
  }
  if (!msgs_.empty()) {
    item.type = ItemType::kMsg;
    item.msg = msgs_.front();
    msgs_.pop_front();
  }
  return item;
}

StreamDecoder::Item StreamDecoder::pull_control() {
  Item item;
  const std::size_t avail = buf_.size() - pos_;
  const std::uint8_t head = buf_[pos_];
  switch (head) {
    case kCtlHello: {
      if (avail < 6) return item;  // kNeedMore
      item.type = ItemType::kHello;
      const std::uint8_t kb = buf_[pos_ + 1];
      item.kind = static_cast<SessionKind>(kb & kHelloKindMask & 0x03);
      item.flags = static_cast<std::uint8_t>(kb & ~kHelloKindMask);
      item.replica = 0;
      for (int i = 0; i < 4; ++i) {
        item.replica |= static_cast<std::uint32_t>(buf_[pos_ + 2 + i]) << (8 * i);
      }
      pos_ += 6;
      chain_ = {};  // session boundary: fresh delta chain
      return item;
    }
    case kCtlAccept:
    case kCtlDone: {
      if (avail < 2) return item;
      item.type = head == kCtlAccept ? ItemType::kAccept : ItemType::kDone;
      item.status = buf_[pos_ + 1];
      pos_ += 2;
      if (head == kCtlAccept) chain_ = {};
      return item;
    }
    case kCtlEnd:
      item.type = ItemType::kEnd;
      pos_ += 1;
      return item;
    default: {  // kMagic[0]
      if (avail < 4) return item;
      if (std::memcmp(buf_.data() + pos_, kMagic, 4) != 0) {
        dead_ = true;
        item.type = ItemType::kError;
        return item;
      }
      item.type = ItemType::kMagic;
      pos_ += 4;
      return item;
    }
  }
}

void ActionSink::apply(const std::vector<vv::protocol::Action>& acts) {
  using A = vv::protocol::Action::Type;
  for (const auto& a : acts) {
    switch (a.type) {
      case A::kSend:
      case A::kSendRevocable:
        vv::frame_encode_msg(*out, a.msg, chain);
        ++sends;
        break;
      case A::kPumpWhenFree:
        pump_requested = true;
        break;
      case A::kFinished:
        finished = true;
        break;
      case A::kRevokeTail:
      case A::kCaptureResume:
      case A::kRepumpAtResume:
      case A::kTraceApplied:
      case A::kTraceRedundant:
      case A::kTraceStraggler:
        break;  // speculation bookkeeping / tracing: no wire effect over TCP
    }
  }
}

}  // namespace optrep::net
