// Synchronous sync-protocol client: one TCP connection driving sequential
// sessions against an optrep_serve instance.
//
// The session engine is the mirror image of the server's (wire_stream.h):
// HELLO and the COMPARE probe leave in one batch (saving an RTT), the COMPARE
// verdicts pick the relation, and the same protocol cores run the element
// transfer — the client is the data sender on a push and the data receiver
// on a pull. I/O is a poll()-duplex non-blocking pump, so a pipelined pull
// can never write-write deadlock against the server, and `Options::io_chunk`
// caps every read/write syscall (io_chunk = 1 feeds the server one byte at a
// time, exercising the codec's kTruncated resume on every boundary).
//
// Fault injection is record-granular: outgoing records are numbered from
// HELLO = 1 (probe = 2, verdict = 3, then transfer records), and a FaultPlan
// either kills the connection immediately before record k or stalls that
// record by a fixed delay. Kill points and record numbers are functions of
// the caller's RNG only, which is what makes a load run's summary
// reproducible. A killed pull commits nothing locally — like the server, the
// client receives into a session-private clone and copies it back only at a
// clean END.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire_stream.h"
#include "vv/order.h"
#include "vv/rotating_vector.h"

namespace optrep::net {

class SyncClient {
 public:
  struct Options {
    std::string host{"127.0.0.1"};
    std::uint16_t port{0};
    std::size_t io_chunk{65536};  // max bytes per read/write syscall (>= 1)
    int timeout_ms{10000};        // overall per-session deadline
    std::uint32_t burst{32};      // pipelined sender batch
    std::size_t write_watermark{256 * 1024};
  };

  struct FaultPlan {
    enum class Kind : std::uint8_t { kNone, kKill, kStall };
    Kind kind{Kind::kNone};
    std::uint32_t before_record{0};  // outgoing record number, HELLO = 1
    std::uint32_t stall_ms{0};
  };

  struct SessionSpec {
    SessionKind kind{SessionKind::kCompare};
    bool pull{false};
    bool stop_and_wait{false};
    std::uint32_t replica{0};
    // The client's replica vector. Read on a push; replaced at commit time
    // on a clean pull. Never touched by a killed or failed session.
    vv::RotatingVector* mine{nullptr};
    SiteId own_site{0};  // recorded after reconciling a concurrent pull
    FaultPlan fault{};
  };

  struct SessionResult {
    bool ok{false};      // ran to a clean END/DONE exchange
    bool killed{false};  // the fault plan cut the connection
    bool stalled{false};
    AcceptStatus accept{AcceptStatus::kOk};
    DoneStatus done{DoneStatus::kNoop};
    vv::Ordering relation{vv::Ordering::kEqual};  // our vector vs the server's
    bool transfer{false};
    std::uint64_t elems_sent{0};
    std::uint64_t elems_applied{0};
    std::uint64_t records_out{0};
    std::uint64_t bytes_tx{0};
    std::uint64_t bytes_rx{0};
    std::string error;  // set when !ok && !killed
  };

  explicit SyncClient(const Options& opt) : opt_(opt) {}

  // Connect and send the connection magic. False + *err on failure.
  bool connect(std::string* err);
  void close() { fd_.reset(); }
  bool connected() const { return fd_.valid(); }

  SessionResult run_session(const SessionSpec& spec);

 private:
  struct Engine;  // per-session state machine (client.cc)

  Options opt_;
  Fd fd_;
  StreamDecoder in_;
};

}  // namespace optrep::net
