#include "net/client.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <thread>

#include "common/check.h"
#include "net/session_util.h"
#include "vv/protocol/compare_core.h"

namespace optrep::net {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

bool SyncClient::connect(std::string* err) {
  fd_ = connect_tcp(opt_.host, opt_.port, err);
  if (!fd_.valid()) return false;
  std::size_t off = 0;  // blocking magic write, then the socket goes async
  while (off < sizeof kMagic) {
    const ssize_t n = ::write(fd_.get(), kMagic + off, sizeof kMagic - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (err) *err = "failed to send connection magic";
    fd_.reset();
    return false;
  }
  set_nonblocking(fd_.get(), true);
  in_ = StreamDecoder{};
  return true;
}

// Per-session state machine. Every method returning bool reports false when
// the session is over early (fault kill or fatal error) — the caller unwinds
// straight out of the pump.
struct SyncClient::Engine {
  SyncClient& cl;
  const SessionSpec& spec;
  SessionResult res;

  std::vector<std::uint8_t> out;
  std::size_t out_pos{0};
  vv::FrameDeltaState out_chain{};
  vv::RotatingVector work;  // session-private clone of *spec.mine

  std::optional<vv::protocol::CompareCore> cmp;
  bool probe_seen{false};
  std::optional<vv::protocol::ElementSenderCore> snd;
  std::optional<AnyReceiver> rx;
  vv::protocol::Actions acts;
  bool pump_pending{false};
  bool initially_concurrent{false};

  enum class St : std::uint8_t {
    kAwaitAccept,
    kCompare,
    kRecv,      // pull transfer: we receive elements
    kSend,      // push transfer: we send elements
    kAwaitEnd,  // pull with nothing to transfer: await the server's END
    kAwaitDone, // our END sent: await the server's DONE
  };
  St st{St::kAwaitAccept};
  bool session_over{false};  // protocol done; drain `out`, then return

  Engine(SyncClient& c, const SessionSpec& s) : cl(c), spec(s) {}

  std::size_t out_size() const { return out.size() - out_pos; }

  // Best-effort synchronous drain of the write buffer (bounded by the
  // session deadline's order of magnitude). The fault gate uses it so that
  // "kill before record k" puts records 1..k-1 on the wire first — the
  // server must observe a *mid-session* disconnect, not an empty one.
  void flush_pending() {
    const auto give_up = Clock::now() + std::chrono::seconds(2);
    while (out_size() > 0 && cl.fd_.valid() && Clock::now() < give_up) {
      struct pollfd p {};
      p.fd = cl.fd_.get();
      p.events = POLLOUT;
      if (::poll(&p, 1, 100) <= 0) continue;
      const ssize_t n = ::write(cl.fd_.get(), out.data() + out_pos, out_size());
      if (n > 0) {
        out_pos += static_cast<std::size_t>(n);
        res.bytes_tx += static_cast<std::uint64_t>(n);
      } else if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        break;
      }
    }
    if (out_pos == out.size()) {
      out.clear();
      out_pos = 0;
    }
  }

  // The fault gate every outgoing record passes through, numbering from
  // HELLO = 1. Records 1..4 exist in every session shape (HELLO, probe,
  // verdict, then END / DONE / first transfer record), so kill/stall points
  // in that range fire independently of server state — the load generator
  // relies on this for reproducible summaries.
  bool fault_gate() {
    ++res.records_out;
    if (spec.fault.kind == FaultPlan::Kind::kKill &&
        res.records_out == spec.fault.before_record) {
      res.killed = true;
      flush_pending();  // the wire carries every record before the cut
      cl.fd_.reset();   // abrupt disconnect: the partial session must be a no-op
      return false;
    }
    if (spec.fault.kind == FaultPlan::Kind::kStall &&
        res.records_out == spec.fault.before_record) {
      res.stalled = true;
      flush_pending();  // the server sees a genuinely slow client, not a batch
      std::this_thread::sleep_for(std::chrono::milliseconds(spec.fault.stall_ms));
    }
    return true;
  }

  template <typename Fn>
  bool ctl(Fn&& encode) {
    if (!fault_gate()) return false;
    encode();
    return true;
  }

  bool apply_actions() {
    using A = vv::protocol::Action::Type;
    for (const auto& a : acts) {
      switch (a.type) {
        case A::kSend:
        case A::kSendRevocable:
          if (!fault_gate()) return false;
          vv::frame_encode_msg(out, a.msg, &out_chain);
          break;
        case A::kPumpWhenFree:
          pump_pending = true;
          break;
        case A::kFinished:
        default:
          break;  // no transport effect (see net::ActionSink)
      }
    }
    return true;
  }

  bool step_sender(const vv::protocol::Event& ev) {
    acts.clear();
    snd->step(ev, acts);
    if (!apply_actions()) return false;
    if (snd->done()) {
      pump_pending = false;
      if (!ctl([&] { put_end(out); })) return false;
      st = St::kAwaitDone;
    }
    return true;
  }

  bool pump_sender() {
    while (pump_pending && snd && !snd->done() && out_size() < cl.opt_.write_watermark) {
      pump_pending = false;
      if (!step_sender(vv::protocol::Event::link_free())) return false;
    }
    return true;
  }

  bool fatal(const char* what) {
    res.error = what;
    cl.fd_.reset();
    return false;
  }

  bool compare_done() {
    const vv::Ordering rel = cmp->decide();  // our vector vs the server's
    res.relation = rel;
    const vv::VectorKind vk = vector_kind_of(spec.kind);
    if (spec.kind == SessionKind::kCompare) {
      if (!ctl([&] { put_end(out); })) return false;
      st = St::kAwaitDone;
      return true;
    }
    if (!spec.pull) {
      // Push: the server receives, so its relation (the flip of ours) is the
      // receiver relation that gates the transfer.
      if (transfer_needed(vv::flip(rel), vk)) {
        res.transfer = true;
        snd.emplace(sender_config(vk, spec.stop_and_wait, cl.opt_.burst), &work);
        st = St::kSend;
        return step_sender(vv::protocol::Event::start());
      }
      if (!ctl([&] { put_end(out); })) return false;
      st = St::kAwaitDone;
      return true;
    }
    // Pull: we receive; our own relation is the receiver relation.
    if (transfer_needed(rel, vk)) {
      res.transfer = true;
      initially_concurrent = rel == vv::Ordering::kConcurrent;
      rx.emplace(vk, spec.stop_and_wait, &work, initially_concurrent);
      acts.clear();
      rx->step(vv::protocol::Event::start(), acts);
      if (!apply_actions()) return false;
      st = St::kRecv;
    } else {
      st = St::kAwaitEnd;
    }
    return true;
  }

  bool on_msg(const vv::VvMsg& m) {
    switch (st) {
      case St::kCompare: {
        acts.clear();
        cmp->step(vv::protocol::Event::msg_arrival(m), acts);
        if (!apply_actions()) return false;  // the verdict answering their probe
        if (m.kind == vv::VvMsg::Kind::kProbe) probe_seen = true;
        if (probe_seen && cmp->complete()) return compare_done();
        return true;
      }
      case St::kRecv: {
        acts.clear();
        rx->step(vv::protocol::Event::msg_arrival(m), acts);
        return apply_actions();  // stop-and-wait ACKs / SYNCS SKIPs
      }
      case St::kSend:
        return step_sender(vv::protocol::Event::msg_arrival(m));
      default:
        return true;  // stray message: tolerated
    }
  }

  bool on_end() {
    switch (st) {
      case St::kRecv: {
        // Gate the DONE record before committing: a kill here must leave
        // *spec.mine untouched (the session is a local no-op).
        if (!ctl([&] { put_done(out, DoneStatus::kCommitted); })) return false;
        if (initially_concurrent) work.record_update(spec.own_site);
        *spec.mine = work;
        res.done = DoneStatus::kCommitted;
        session_over = true;
        return true;
      }
      case St::kAwaitEnd:
        if (!ctl([&] { put_done(out, DoneStatus::kNoop); })) return false;
        res.done = DoneStatus::kNoop;
        session_over = true;
        return true;
      default:
        return fatal("unexpected END");
    }
  }

  bool process_items() {
    using IT = StreamDecoder::ItemType;
    for (;;) {
      const StreamDecoder::Item item = cl.in_.next();
      switch (item.type) {
        case IT::kNeedMore:
          return true;
        case IT::kError:
          return fatal("stream decode error");
        case IT::kAccept:
          if (st != St::kAwaitAccept) return fatal("unexpected ACCEPT");
          res.accept = static_cast<AcceptStatus>(item.status);
          if (res.accept != AcceptStatus::kOk) {
            session_over = true;  // server flushes the status and closes
            return true;
          }
          st = St::kCompare;
          break;
        case IT::kMsg:
          if (!on_msg(item.msg)) return false;
          break;
        case IT::kEnd:
          if (!on_end()) return false;
          break;
        case IT::kDone:
          if (st != St::kAwaitDone) return fatal("unexpected DONE");
          res.done = static_cast<DoneStatus>(item.status);
          session_over = true;
          return true;
        case IT::kHello:
        case IT::kMagic:
          return fatal("unexpected control record");
      }
    }
  }
};

SyncClient::SessionResult SyncClient::run_session(const SessionSpec& spec) {
  OPTREP_CHECK_MSG(spec.mine != nullptr, "run_session needs the client vector");
  Engine e(*this, spec);
  if (!fd_.valid()) {
    e.res.error = "not connected";
    return e.res;
  }
  e.work = *spec.mine;

  // HELLO and our COMPARE probe leave in one batch.
  const std::uint8_t flags =
      static_cast<std::uint8_t>((spec.pull ? kHelloFlagPull : 0) |
                                (spec.stop_and_wait ? kHelloFlagStopAndWait : 0));
  e.out_chain = {};
  if (!e.ctl([&] { put_hello(e.out, spec.kind, flags, spec.replica); })) return e.res;
  e.cmp.emplace(&e.work);
  e.acts.clear();
  e.cmp->step(vv::protocol::Event::start(), e.acts);
  if (!e.apply_actions()) return e.res;

  const auto deadline = Clock::now() + std::chrono::milliseconds(opt_.timeout_ms);
  const std::size_t chunk = opt_.io_chunk == 0 ? 1 : opt_.io_chunk;
  std::vector<std::uint8_t> rbuf(std::min<std::size_t>(chunk, 65536));

  while (!(e.session_over && e.out_size() == 0)) {
    if (!e.session_over && e.st == Engine::St::kSend && !e.pump_sender()) return e.res;

    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      e.fatal("session timeout");
      return e.res;
    }
    struct pollfd p {};
    p.fd = fd_.get();
    p.events = static_cast<short>(POLLIN | (e.out_size() > 0 ? POLLOUT : 0));
    const int rc = ::poll(&p, 1, static_cast<int>(left.count()));
    if (rc < 0) {
      if (errno == EINTR) continue;
      e.fatal("poll failed");
      return e.res;
    }
    if (rc == 0) continue;  // re-check the deadline

    if ((p.revents & POLLOUT) != 0 && e.out_size() > 0) {
      const std::size_t len = std::min(chunk, e.out_size());
      const ssize_t n = ::write(fd_.get(), e.out.data() + e.out_pos, len);
      if (n > 0) {
        e.out_pos += static_cast<std::size_t>(n);
        e.res.bytes_tx += static_cast<std::uint64_t>(n);
        if (e.out_pos == e.out.size()) {
          e.out.clear();
          e.out_pos = 0;
        }
      } else if (n < 0 && errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        e.fatal("write failed");
        return e.res;
      }
    }
    if ((p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      const ssize_t n = ::read(fd_.get(), rbuf.data(), rbuf.size());
      if (n > 0) {
        e.res.bytes_rx += static_cast<std::uint64_t>(n);
        in_.append(rbuf.data(), static_cast<std::size_t>(n));
        if (!e.process_items()) return e.res;
      } else if (n == 0) {
        if (e.session_over) break;  // e.g. the bad-ACCEPT close
        e.fatal("server closed connection");
        return e.res;
      } else if (errno != EINTR && errno != EAGAIN && errno != EWOULDBLOCK) {
        e.fatal("read failed");
        return e.res;
      }
    }
  }

  if (e.res.accept != AcceptStatus::kOk) {
    fd_.reset();  // the server is closing this connection
  }
  e.res.ok = e.session_over && !e.res.killed && e.res.error.empty() &&
             e.res.accept == AcceptStatus::kOk;
  if (e.snd) e.res.elems_sent = e.snd->elems_sent();
  if (e.rx) e.res.elems_applied = e.rx->counters().applied;
  return e.res;
}

}  // namespace optrep::net
