// The server's replica table: PR 8's concurrent RotatingVector storage bound
// to session-granularity transactions.
//
// Every replica slot embeds its rt::OLock (inside the vector). Sessions never
// operate on live storage:
//
//   - snapshot(): an optimistic clone — read_begin, walk the ≺ list through
//     the vector's acquire-load iterators into a private rebuild, then
//     read_validate. Retries on writer interference, falling back to the
//     writer queue after a bounded number of attempts (the OptiQL
//     discipline). COMPARE and pull sessions run entirely on the clone, so
//     read-mostly load never serializes behind writers.
//   - commit(): replays a session-private vector into the slot under an
//     OLockGuard (release stores via the vector's own mutators — the plain
//     copy-assign would reallocate and tear under concurrent optimistic
//     readers, see rotating_vector.h). Capacity-guarded: reserve() pins the
//     slot arrays at construction and a commit may never grow past them.
//
// Push sessions additionally hold the slot's *write-session* ownership from
// HELLO to DONE — a FIFO ticket (busy flag + waiter queue) above the olock,
// so two clients pushing to one replica serialize as whole sessions instead
// of interleaving snapshot/commit pairs that would lose updates. Waiters are
// parked (their ACCEPT deferred), not bounced: the releasing worker receives
// the next waiter's address and wakes it cross-worker. The receiver-untouched
// recovery invariant (PR 5) is structural here: a dropped connection simply
// discards its private clone and releases the ticket — live storage never
// saw the partial session.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "rt/olock.h"
#include "vv/rotating_vector.h"

namespace optrep::net {

class ReplicaStore {
 public:
  struct Config {
    std::uint32_t replicas{16};
    vv::VectorKind kind{vv::VectorKind::kSrv};
    std::size_t site_capacity{1024};  // max distinct sites a replica may hold
    std::uint64_t seed{1};            // prefill determinism
    std::uint32_t prefill_updates{0};  // seeded local updates per replica
  };

  // A parked write session: enough address to wake it cross-worker.
  struct Waiter {
    unsigned worker{0};
    std::uint64_t token{0};
    friend bool operator==(const Waiter&, const Waiter&) = default;
  };

  struct Counters {
    std::uint64_t snapshots{0};
    std::uint64_t snapshot_retries{0};
    std::uint64_t snapshot_fallbacks{0};  // optimistic tries exhausted → locked
    std::uint64_t commits{0};
    std::uint64_t capacity_rejects{0};
    std::uint64_t write_parks{0};
  };

  explicit ReplicaStore(const Config& cfg);

  std::uint32_t replicas() const { return static_cast<std::uint32_t>(slots_.size()); }
  vv::VectorKind kind() const { return cfg_.kind; }
  std::size_t site_capacity() const { return cfg_.site_capacity; }

  // The site id a replica increments after reconciling a concurrent sync
  // (§2.2's mandated local update). Client sites live above this range.
  SiteId own_site(std::uint32_t r) const { return SiteId{r}; }

  // Quiesced access (tests / setup / post-stop inspection only).
  vv::RotatingVector& replica_unsafe(std::uint32_t r) { return slots_[r]->vec; }
  const vv::RotatingVector& replica_unsafe(std::uint32_t r) const { return slots_[r]->vec; }

  // Clone replica r into *out without blocking behind the writer queue unless
  // optimistic validation keeps failing. Safe concurrently with one committing
  // writer. *out is overwritten.
  void snapshot(std::uint32_t r, vv::RotatingVector* out) const;

  // Replay `src` into replica r under its writer lock. The caller must hold
  // the slot's write ticket (push path) — concurrent snapshots stay valid,
  // concurrent commits to the same slot would be a protocol bug upstream.
  // False (and no mutation) when src exceeds the slot's pinned capacity.
  bool commit(std::uint32_t r, const vv::RotatingVector& src);

  // Write-session ticket. acquire returns true when ownership is granted
  // immediately; otherwise w parks in FIFO order. release returns the next
  // waiter (already owning the ticket) for the caller to wake, or nullopt
  // when the slot went idle. cancel removes a parked waiter; false means the
  // waiter was not queued — i.e. a release already transferred ownership to
  // it, and the caller now owns (and must release) the ticket.
  bool acquire_write(std::uint32_t r, Waiter w);
  std::optional<Waiter> release_write(std::uint32_t r);
  bool cancel_wait(std::uint32_t r, Waiter w);

  Counters counters() const;
  rt::OLock::Counters olock_counters() const;  // summed across slots

 private:
  struct Slot {
    vv::RotatingVector vec;
    std::mutex mu;
    bool busy{false};
    std::deque<Waiter> waiters;
  };

  Config cfg_;
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::atomic<std::uint64_t> snapshots_{0};
  mutable std::atomic<std::uint64_t> snapshot_retries_{0};
  mutable std::atomic<std::uint64_t> snapshot_fallbacks_{0};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> capacity_rejects_{0};
  std::atomic<std::uint64_t> write_parks_{0};
};

}  // namespace optrep::net
