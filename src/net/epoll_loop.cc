#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>

namespace optrep::net {

namespace {

// Reserved token for the internal wake eventfd; connection tokens are
// sequence numbers and never reach this value.
constexpr std::uint64_t kWakeToken = ~std::uint64_t{0};

}  // namespace

EpollLoop::EpollLoop(bool edge_triggered)
    : epfd_(::epoll_create1(EPOLL_CLOEXEC)),
      wakefd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)),
      edge_triggered_(edge_triggered) {
  if (epfd_.valid() && wakefd_.valid()) {
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: stays readable until drained
    ev.data.u64 = kWakeToken;
    if (::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, wakefd_.get(), &ev) != 0) {
      epfd_.reset();
    }
  }
}

bool EpollLoop::add(int fd, std::uint64_t token, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) | EPOLLRDHUP |
              (edge_triggered_ ? EPOLLET : 0u);
  ev.data.u64 = token;
  return ::epoll_ctl(epfd_.get(), EPOLL_CTL_ADD, fd, &ev) == 0;
}

bool EpollLoop::mod(int fd, std::uint64_t token, bool want_read, bool want_write) {
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u) | EPOLLRDHUP |
              (edge_triggered_ ? EPOLLET : 0u);
  ev.data.u64 = token;
  return ::epoll_ctl(epfd_.get(), EPOLL_CTL_MOD, fd, &ev) == 0;
}

void EpollLoop::del(int fd) {
  ::epoll_ctl(epfd_.get(), EPOLL_CTL_DEL, fd, nullptr);
}

bool EpollLoop::wait(std::vector<Ready>& out, int timeout_ms) {
  out.clear();
  epoll_event evs[64];
  int n;
  do {
    n = ::epoll_wait(epfd_.get(), evs, 64, timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return false;
  for (int i = 0; i < n; ++i) {
    if (evs[i].data.u64 == kWakeToken) {
      std::uint64_t drained = 0;
      while (::read(wakefd_.get(), &drained, sizeof(drained)) > 0) {
      }
      continue;
    }
    Ready r;
    r.token = evs[i].data.u64;
    r.readable = (evs[i].events & (EPOLLIN | EPOLLRDHUP)) != 0;
    r.writable = (evs[i].events & EPOLLOUT) != 0;
    r.error = (evs[i].events & (EPOLLERR | EPOLLHUP)) != 0;
    out.push_back(r);
  }
  return true;
}

void EpollLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wakefd_.get(), &one, sizeof(one));
}

}  // namespace optrep::net
