// Thin RAII layer over POSIX sockets for the sync server and its clients.
//
// Everything here is loopback-grade plumbing: TCP sockets on an address the
// caller names, O_NONBLOCK toggling, and TCP_NODELAY (sync sessions are
// request/response chains of tiny records — Nagle would serialize them
// against delayed acks). Errors are reported through std::string outputs,
// never exceptions: the server treats every socket failure as a per-
// connection event, not a process event.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

namespace optrep::net {

// Move-only owner of a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  Fd(Fd&& o) noexcept : fd_(std::exchange(o.fd_, -1)) {}
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = std::exchange(o.fd_, -1);
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_{-1};
};

// Listening TCP socket bound to host:port (port 0 = ephemeral; *bound_port
// receives the actual port). Returns an invalid Fd and sets *err on failure.
Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              std::uint16_t* bound_port, std::string* err);

// Blocking connect to host:port.
Fd connect_tcp(const std::string& host, std::uint16_t port, std::string* err);

bool set_nonblocking(int fd, bool on);
void set_nodelay(int fd);

}  // namespace optrep::net
