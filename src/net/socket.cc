#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace optrep::net {

namespace {

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool parse_addr(const std::string& host, std::uint16_t port, sockaddr_in* addr,
                std::string* err) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  const char* h = host.empty() ? "127.0.0.1" : host.c_str();
  if (inet_pton(AF_INET, h, &addr->sin_addr) != 1) {
    if (err != nullptr) *err = "bad IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Fd listen_tcp(const std::string& host, std::uint16_t port, int backlog,
              std::uint16_t* bound_port, std::string* err) {
  sockaddr_in addr{};
  if (!parse_addr(host, port, &addr, err)) return Fd{};
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (err != nullptr) *err = errno_str("socket");
    return Fd{};
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (err != nullptr) *err = errno_str("bind");
    return Fd{};
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (err != nullptr) *err = errno_str("listen");
    return Fd{};
  }
  if (bound_port != nullptr) {
    sockaddr_in got{};
    socklen_t len = sizeof(got);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&got), &len) != 0) {
      if (err != nullptr) *err = errno_str("getsockname");
      return Fd{};
    }
    *bound_port = ntohs(got.sin_port);
  }
  return fd;
}

Fd connect_tcp(const std::string& host, std::uint16_t port, std::string* err) {
  sockaddr_in addr{};
  if (!parse_addr(host, port, &addr, err)) return Fd{};
  Fd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) {
    if (err != nullptr) *err = errno_str("socket");
    return Fd{};
  }
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINTR) continue;
    if (err != nullptr) *err = errno_str("connect");
    return Fd{};
  }
  set_nodelay(fd.get());
  return fd;
}

bool set_nonblocking(int fd, bool on) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd, F_SETFL, want) == 0;
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace optrep::net
