// The sync-server wire protocol: vv/frame_codec message streams with in-band
// session control records.
//
// A connection opens with a 4-byte magic ("ORS1"); after that it carries any
// number of sequential sessions, each of them:
//
//   client → server   HELLO  = [0x48, kind byte, replica id (LE32)]
//   server → client   ACCEPT = [0x41, status]
//   both directions   a frame_codec message stream (COMPARE probes/verdicts,
//                     then the sync element stream and its responses)
//   data sender  →    END    = [0x45]      (its half of the session is done)
//   data receiver →   DONE   = [0x44, status]
//
// The kind byte's low nibble selects the session (COMPARE / SYNCB / SYNCC /
// SYNCS); flag 0x10 makes it a pull (server is the element sender), flag
// 0x20 selects stop-and-wait flow control (the vv ablation mode — fully
// lockstep, which is also what makes bench_serve's byte totals machine-
// independent).
//
// The control tags live in frame_codec's unassigned tag space, so the
// decoder below is context-free: it runs vv::frame_decode_stream until the
// codec reports kUnknownTag, checks that byte against the control map, and
// resumes the codec afterwards. kTruncated simply means "await more bytes" —
// the satellite fix in frame_codec.h is what makes this loop possible.
// Element delta chains span a whole session half (reset at HELLO/ACCEPT),
// so consecutive sync elements delta-compress across what would have been
// frame boundaries in the simulator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

#include "vv/frame_codec.h"
#include "vv/order.h"
#include "vv/protocol/core.h"
#include "vv/rotating_vector.h"
#include "vv/wire.h"

namespace optrep::net {

inline constexpr std::uint8_t kMagic[4] = {'O', 'R', 'S', '1'};

// Control tags — all in frame_codec's unknown-tag space (no 0x80/0x20 bits,
// not a SKIP pattern, not a 1-byte control tag).
inline constexpr std::uint8_t kCtlHello = 0x48;   // 'H'
inline constexpr std::uint8_t kCtlAccept = 0x41;  // 'A'
inline constexpr std::uint8_t kCtlEnd = 0x45;     // 'E'
inline constexpr std::uint8_t kCtlDone = 0x44;    // 'D'

enum class SessionKind : std::uint8_t { kCompare = 0, kSyncB = 1, kSyncC = 2, kSyncS = 3 };

inline constexpr std::uint8_t kHelloKindMask = 0x0F;
inline constexpr std::uint8_t kHelloFlagPull = 0x10;         // server sends the elements
inline constexpr std::uint8_t kHelloFlagStopAndWait = 0x20;  // ablation flow control

enum class AcceptStatus : std::uint8_t {
  kOk = 0,
  kBadKind = 1,     // sync kind does not match the store's vector kind
  kBadReplica = 2,  // replica id out of range
  kShutdown = 3,    // server is stopping
};

enum class DoneStatus : std::uint8_t {
  kCommitted = 0,  // receiver applied and committed the transfer
  kNoop = 1,       // nothing to transfer (=, covered, or BRV ‖)
  kCapacity = 2,   // commit rejected: vector exceeds the store's site capacity
};

constexpr std::string_view to_string(SessionKind k) {
  switch (k) {
    case SessionKind::kCompare: return "compare";
    case SessionKind::kSyncB: return "syncb";
    case SessionKind::kSyncC: return "syncc";
    case SessionKind::kSyncS: return "syncs";
  }
  return "?";
}

// The sync algorithm a session kind runs (compare has none; callers gate).
constexpr vv::VectorKind vector_kind_of(SessionKind k) {
  switch (k) {
    case SessionKind::kSyncB: return vv::VectorKind::kBrv;
    case SessionKind::kSyncC: return vv::VectorKind::kCrv;
    case SessionKind::kSyncS: return vv::VectorKind::kSrv;
    case SessionKind::kCompare: break;
  }
  return vv::VectorKind::kBrv;
}

constexpr SessionKind session_kind_of(vv::VectorKind k) {
  switch (k) {
    case vv::VectorKind::kBrv: return SessionKind::kSyncB;
    case vv::VectorKind::kCrv: return SessionKind::kSyncC;
    case vv::VectorKind::kSrv: return SessionKind::kSyncS;
  }
  return SessionKind::kSyncB;
}

// Does the element transfer run at all? `receiver_rel` is the receiver's
// COMPARE verdict (receiver vector vs sender vector): a strict predecessor
// always syncs; concurrent replicas sync under CRV/SRV, while SYNCB cannot
// reconcile ‖ and the session degrades to a no-op (§2.2 / sync_with_recovery
// BRV note). kEqual / kAfter mean the receiver already covers the sender.
constexpr bool transfer_needed(vv::Ordering receiver_rel, vv::VectorKind kind) {
  return receiver_rel == vv::Ordering::kBefore ||
         (receiver_rel == vv::Ordering::kConcurrent && kind != vv::VectorKind::kBrv);
}

// ---- encode helpers --------------------------------------------------------

inline void put_magic(std::vector<std::uint8_t>& out) {
  out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
}
inline void put_hello(std::vector<std::uint8_t>& out, SessionKind kind, std::uint8_t flags,
                      std::uint32_t replica) {
  out.push_back(kCtlHello);
  out.push_back(static_cast<std::uint8_t>(static_cast<std::uint8_t>(kind) | flags));
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(replica >> (8 * i)));
}
inline void put_accept(std::vector<std::uint8_t>& out, AcceptStatus s) {
  out.push_back(kCtlAccept);
  out.push_back(static_cast<std::uint8_t>(s));
}
inline void put_end(std::vector<std::uint8_t>& out) { out.push_back(kCtlEnd); }
inline void put_done(std::vector<std::uint8_t>& out, DoneStatus s) {
  out.push_back(kCtlDone);
  out.push_back(static_cast<std::uint8_t>(s));
}

// ---- incremental stream decoder -------------------------------------------

// Buffers raw socket bytes and yields a typed item per pull: codec messages,
// control records, or kNeedMore while a record sits incomplete at the buffer
// tail. HELLO/ACCEPT reset the element delta chain (session boundary). A
// byte that is neither a codec tag nor a control tag kills the stream
// (kError), as does a codec-level varint overflow.
class StreamDecoder {
 public:
  enum class ItemType : std::uint8_t {
    kNeedMore,
    kMsg,     // a vv::VvMsg
    kMagic,   // connection preamble
    kHello,   // kind/flags + replica
    kAccept,  // status
    kEnd,
    kDone,  // status
    kError,
  };

  struct Item {
    ItemType type{ItemType::kNeedMore};
    vv::VvMsg msg{};
    SessionKind kind{SessionKind::kCompare};
    std::uint8_t flags{0};
    std::uint32_t replica{0};
    std::uint8_t status{0};
  };

  void append(const std::uint8_t* data, std::size_t n);
  Item next();

  std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  Item pull_control();

  std::vector<std::uint8_t> buf_;
  std::size_t pos_{0};
  vv::FrameDeltaState chain_{};
  std::deque<vv::VvMsg> msgs_;  // decoded ahead by frame_decode_stream
  bool dead_{false};
};

// ---- outgoing action sink --------------------------------------------------

// Translates one protocol-core action batch into stream bytes. Over TCP
// nothing is revocable (TailViews are always zero), so kSendRevocable is a
// plain send and the revoke/re-pump speculation actions are no-ops; what
// remains is sends, the pump-continuation request, and the finish marker.
struct ActionSink {
  std::vector<std::uint8_t>* out{nullptr};
  vv::FrameDeltaState* chain{nullptr};
  bool pump_requested{false};
  bool finished{false};
  std::uint64_t sends{0};

  void apply(const std::vector<vv::protocol::Action>& acts);
};

}  // namespace optrep::net
