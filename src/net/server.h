// The epoll-driven async sync server (ROADMAP item 1).
//
// One process, N reactor workers on an rt::ThreadPool (worker 0 also owns
// the listener; accepted connections are dealt round-robin through per-worker
// inboxes + an eventfd wake). Each worker runs its own net::EpollLoop and
// owns its connections outright — no cross-worker connection state, so the
// only sharing is the ReplicaStore, which serializes writers per slot and
// serves readers optimistically.
//
// A connection's session pipeline (wire_stream.h protocol):
//
//   HELLO → [write ticket, push only] → snapshot → ACCEPT + COMPARE probe
//   → COMPARE verdicts decide the relation → element transfer (server is
//   receiver for push, sender for pull; COMPARE sessions skip the transfer)
//   → END/DONE, commit on the push path.
//
// Sessions run on a private snapshot and commit whole or not at all: any
// disconnect, decode error, or slow-client teardown before the commit point
// discards the clone, which is what makes the PR 5 recovery invariant — a
// failed session leaves the receiver replica byte-identical — structural
// rather than policed. Slow readers exert backpressure on the sender pump
// via a write-buffer watermark; partial records are the stream decoder's
// problem (frame_codec's resumable kTruncated contract).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/replica_store.h"
#include "net/socket.h"
#include "net/wire_stream.h"

namespace optrep::net {

struct ServerConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};  // 0 = ephemeral; see Server::port()
  unsigned workers{1};
  ReplicaStore::Config store{};
  bool edge_triggered{true};
  std::uint32_t burst{32};                  // sender pump batch per dispatch
  std::size_t write_watermark{256 * 1024};  // pause the pump above this
  int backlog{128};
};

// Monotonic server counters; snapshot() is exact once stop() returned.
struct ServerStats {
  std::uint64_t conns_accepted{0};
  std::uint64_t conns_closed{0};
  std::uint64_t hellos{0};
  std::uint64_t bad_hellos{0};  // rejected ACCEPTs (kind/replica mismatch)
  std::uint64_t sessions_completed{0};
  std::uint64_t sessions_aborted{0};  // disconnect/error mid-session
  std::uint64_t compare_sessions{0};
  std::uint64_t push_sessions{0};
  std::uint64_t pull_sessions{0};
  std::uint64_t commits{0};
  std::uint64_t noops{0};
  std::uint64_t capacity_rejects{0};
  std::uint64_t parked{0};
  std::uint64_t bytes_rx{0};
  std::uint64_t bytes_tx{0};
  std::uint64_t decode_errors{0};
  std::uint64_t backpressure_pauses{0};
};

class Server {
 public:
  explicit Server(const ServerConfig& cfg);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Bind and launch the worker pool on a background thread. False + *err on
  // bind failure. Idempotent stop(); the destructor stops too.
  bool start(std::string* err);
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  std::uint16_t port() const { return port_; }
  const ServerConfig& config() const { return cfg_; }

  ServerStats stats() const;
  ReplicaStore& store() { return store_; }
  const ReplicaStore& store() const { return store_; }

 private:
  struct Conn;
  struct Worker;

  void worker_loop(unsigned w);
  void accept_ready();
  void adopt_conn(Worker& wk, int fd);
  void post_resume(ReplicaStore::Waiter next, std::uint32_t replica);
  void resume_parked(Worker& wk, std::uint64_t token, std::uint32_t replica);

  // Connection event handling (defined in server.cc). Handlers returning
  // bool report false when they closed the connection.
  bool on_readable(Worker& wk, Conn& c);
  bool on_writable(Worker& wk, Conn& c);
  bool flush_out(Conn& c);
  bool finish_io(Worker& wk, Conn& c);
  void pump_sender(Conn& c);
  void step_sender(Conn& c, const vv::protocol::Event& ev);
  bool dispatch_items(Worker& wk, Conn& c);
  void handle_hello(Worker& wk, Conn& c, const StreamDecoder::Item& item);
  void begin_session(Worker& wk, Conn& c);
  void handle_msg(Conn& c, const vv::VvMsg& msg);
  void compare_done(Conn& c);
  bool handle_end(Worker& wk, Conn& c);
  void end_session(Conn& c);
  void release_ticket(Conn& c);
  void close_conn(Worker& wk, Conn& c);

  ServerConfig cfg_;
  ReplicaStore store_;
  Fd listener_;
  std::uint16_t port_{0};
  std::vector<std::unique_ptr<Worker>> workers_;
  std::thread pool_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint32_t> next_worker_{0};  // round-robin accept target

  // Stats (atomics; ServerStats is the plain snapshot).
  struct AtomicStats;
  std::unique_ptr<AtomicStats> stats_;
};

}  // namespace optrep::net
