// Non-blocking epoll event loop — the reactor under one server worker.
//
// Edge-triggered by default: the server's read path drains to EAGAIN and its
// write path flushes to EAGAIN on every readiness report, which is the
// discipline ET requires and which also works unmodified under level
// triggering, so `edge_triggered=false` is a pure fallback switch (for
// debugging, and for kernels/filesystems where ET semantics are suspect).
//
// Each registered fd carries a caller token (connection id); readiness
// reports come back token-tagged. wake() is the only thread-safe entry point:
// it pokes an internal eventfd so a wait() parked in epoll_wait returns and
// the owning worker can drain its cross-thread inbox.
#pragma once

#include <cstdint>
#include <vector>

#include "net/socket.h"

namespace optrep::net {

class EpollLoop {
 public:
  explicit EpollLoop(bool edge_triggered = true);
  ~EpollLoop() = default;
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  bool valid() const { return epfd_.valid() && wakefd_.valid(); }
  bool edge_triggered() const { return edge_triggered_; }

  // Register / re-arm / remove an fd. `token` tags readiness reports.
  bool add(int fd, std::uint64_t token, bool want_read, bool want_write);
  bool mod(int fd, std::uint64_t token, bool want_read, bool want_write);
  void del(int fd);

  struct Ready {
    std::uint64_t token{0};
    bool readable{false};
    bool writable{false};
    bool error{false};  // EPOLLERR/EPOLLHUP: tear the connection down
  };

  // Block up to timeout_ms (-1 = forever) and fill `out` with readiness
  // reports; wake() pokes are absorbed internally (they just cause an early
  // return with whatever else was ready). Returns false on a fatal
  // epoll_wait error.
  bool wait(std::vector<Ready>& out, int timeout_ms);

  // Thread-safe: make a concurrent wait() return promptly.
  void wake();

 private:
  Fd epfd_;
  Fd wakefd_;
  bool edge_triggered_;
};

}  // namespace optrep::net
