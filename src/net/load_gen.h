// Closed-loop load generator for optrep_serve.
//
// N concurrent clients, each a thread with its own connection and its own
// persistent replica vector, issue sessions back-to-back (optionally spaced
// by a think time): a seeded mix of COMPARE / push / pull against a seeded
// mix of private and shared (contended) server replicas, with a seeded delta
// size recorded locally before every session. All randomness is drawn from
// per-client Rng(task_seed(seed, k)) streams in a fixed order every session
// — including the fault draws — so the *summary* (sessions attempted,
// completed, killed, stalled, per-kind counts) is a pure function of the
// config. Commit/no-op outcomes and element counts depend on cross-client
// interleaving at the server and are deliberately excluded from the summary;
// they appear in the report's non-deterministic stats section instead,
// alongside latency percentiles and throughput.
//
// The --fault mode (kill_prob / stall_prob) drives SyncClient::FaultPlan:
// kills close the connection immediately before a record in the range every
// session shape is guaranteed to reach (see client.h), stalls sleep before
// one record, holding the session open against the server.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/server.h"
#include "vv/rotating_vector.h"

namespace optrep::net {

struct LoadConfig {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
  vv::VectorKind kind{vv::VectorKind::kSrv};
  unsigned clients{8};
  std::uint32_t sessions_per_client{100};
  std::uint32_t replicas{16};    // must match the server store
  double compare_frac{0.25};     // fraction of sessions that are COMPARE
  double pull_frac{0.25};        // of sync sessions, fraction pulling
  double shared_frac{0.25};      // chance the target replica is drawn uniformly
                                 // (contended) instead of the client's own
  std::uint32_t max_delta{4};    // local updates recorded before each session
  std::uint32_t think_us{0};
  bool stop_and_wait{false};
  std::size_t io_chunk{65536};
  std::uint64_t seed{1};
  // Fault injection (0 disables). Kill and stall are mutually exclusive per
  // session; kill wins the draw.
  double kill_prob{0.0};
  double stall_prob{0.0};
  std::uint32_t stall_ms{1};
  int timeout_ms{10000};
  std::size_t site_capacity{1024};
};

struct LoadReport {
  // Deterministic summary: functions of the config only.
  std::uint64_t attempted{0};
  std::uint64_t completed{0};
  std::uint64_t killed{0};
  std::uint64_t stalled{0};
  std::uint64_t errors{0};  // transport/protocol failures (0 on a sane run)
  std::uint64_t compare_sessions{0};
  std::uint64_t push_sessions{0};
  std::uint64_t pull_sessions{0};

  // Server-state-dependent stats (NOT in the deterministic summary).
  std::uint64_t transfers{0};
  std::uint64_t noops{0};
  std::uint64_t elems_sent{0};
  std::uint64_t elems_applied{0};
  std::uint64_t bytes_tx{0};
  std::uint64_t bytes_rx{0};

  // Timing (completed sessions only; microseconds).
  double elapsed_s{0.0};
  double sessions_per_s{0.0};
  double bytes_per_s{0.0};
  double p50_us{0.0};
  double p90_us{0.0};
  double p99_us{0.0};
  double p999_us{0.0};
  double max_us{0.0};

  std::string first_error;  // diagnostic for errors > 0
};

// Run the closed loop: one thread per client, blocking until every client
// has issued its sessions. The server must already be listening.
LoadReport run_load(const LoadConfig& cfg);

// The deterministic summary alone, one JSON line — byte-identical across
// runs with the same config (the fault-determinism ctest diffs this).
std::string summary_json(const LoadConfig& cfg, const LoadReport& r);

// Full optrep.serve/v1 report: config, summary, stats, latency/throughput,
// and (when provided) the server's own counters.
std::string report_json(const LoadConfig& cfg, const LoadReport& r,
                        const ServerStats* server);

}  // namespace optrep::net
