// Shared glue between the server's and client's session state machines and
// the sans-I/O protocol cores: a kind-dispatched receiver wrapper and the
// sender configuration both endpoints use over TCP.
#pragma once

#include <cstdint>
#include <variant>

#include "vv/protocol/compare_core.h"
#include "vv/protocol/receiver_core.h"
#include "vv/protocol/sender_core.h"
#include "vv/rotating_vector.h"

namespace optrep::net {

// TCP binding of ElementSenderCore: unframed (nothing on a socket is
// revocable — a TailView is always zero), bursty pipelining (one pump
// dispatch emits `burst` committed sends, then parks a continuation the
// event loop fires when the write buffer drains below its watermark), or
// lockstep stop-and-wait for the ablation mode.
inline vv::protocol::ElementSenderCore::Config sender_config(vv::VectorKind kind,
                                                             bool stop_and_wait,
                                                             std::uint32_t burst) {
  vv::protocol::ElementSenderCore::Config cfg;
  cfg.skip_enabled = kind == vv::VectorKind::kSrv;
  cfg.pipelined = !stop_and_wait;
  cfg.framed = false;
  cfg.burst = stop_and_wait ? 1 : burst;
  return cfg;
}

// The receiver core for a sync algorithm, behind one step() surface.
class AnyReceiver {
 public:
  AnyReceiver(vv::VectorKind kind, bool stop_and_wait, vv::RotatingVector* a,
              bool initially_concurrent)
      : core_(make(kind, stop_and_wait, a, initially_concurrent)) {}

  void step(const vv::protocol::Event& ev, vv::protocol::Actions& out) {
    std::visit([&](auto& c) { c.step(ev, out); }, core_);
  }
  const vv::protocol::ReceiverCounters& counters() const {
    return std::visit([](const auto& c) -> const vv::protocol::ReceiverCounters& {
      return c.counters();
    }, core_);
  }
  bool finished() const {
    return std::visit([](const auto& c) { return c.finished(); }, core_);
  }

 private:
  using Core = std::variant<vv::protocol::BasicReceiverCore, vv::protocol::ConflictReceiverCore,
                            vv::protocol::SkipReceiverCore>;

  static Core make(vv::VectorKind kind, bool stop_and_wait, vv::RotatingVector* a,
                   bool initially_concurrent) {
    const bool pipelined = !stop_and_wait;
    switch (kind) {
      case vv::VectorKind::kBrv:
        return vv::protocol::BasicReceiverCore(pipelined, a);
      case vv::VectorKind::kCrv:
        return vv::protocol::ConflictReceiverCore(pipelined, a, initially_concurrent);
      case vv::VectorKind::kSrv:
        break;
    }
    return vv::protocol::SkipReceiverCore(pipelined, a, initially_concurrent);
  }

  Core core_;
};

}  // namespace optrep::net
