#include "net/load_gen.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "net/client.h"
#include "obs/export.h"
#include "rt/thread_pool.h"

namespace optrep::net {

namespace {

using Clock = std::chrono::steady_clock;

struct ClientOutcome {
  std::uint64_t attempted{0};
  std::uint64_t completed{0};
  std::uint64_t killed{0};
  std::uint64_t stalled{0};
  std::uint64_t errors{0};
  std::uint64_t compare_sessions{0};
  std::uint64_t push_sessions{0};
  std::uint64_t pull_sessions{0};
  std::uint64_t transfers{0};
  std::uint64_t noops{0};
  std::uint64_t elems_sent{0};
  std::uint64_t elems_applied{0};
  std::uint64_t bytes_tx{0};
  std::uint64_t bytes_rx{0};
  std::vector<std::uint64_t> lat_ns;
  std::string first_error;
};

void note_error(ClientOutcome& o, const std::string& what) {
  ++o.errors;
  if (o.first_error.empty()) o.first_error = what;
}

void run_client(const LoadConfig& cfg, unsigned k, ClientOutcome& o) {
  // Two decorrelated per-client streams: the workload draws and the fault
  // draws. Both advance by a fixed number of draws per session whether or
  // not the draw is used, so the summary never depends on server state.
  Rng rng(rt::task_seed(cfg.seed, k));
  Rng frng(rt::task_seed(cfg.seed ^ 0xfa0175eedULL, k));

  SyncClient::Options copt;
  copt.host = cfg.host;
  copt.port = cfg.port;
  copt.io_chunk = cfg.io_chunk;
  copt.timeout_ms = cfg.timeout_ms;
  SyncClient cl(copt);
  std::string err;
  if (!cl.connect(&err)) {
    note_error(o, "connect: " + err);
    return;
  }

  vv::RotatingVector mine;
  mine.reserve(cfg.site_capacity);
  const SiteId own{cfg.replicas + k};

  o.lat_ns.reserve(cfg.sessions_per_client);
  for (std::uint32_t s = 0; s < cfg.sessions_per_client; ++s) {
    // Fixed draw order, every session.
    const double kind_u = rng.uniform();
    const double pull_u = rng.uniform();
    const double shared_u = rng.uniform();
    const std::uint64_t replica_u = rng.below(cfg.replicas);
    const std::uint64_t delta = rng.below(std::uint64_t{cfg.max_delta} + 1);
    const double kill_u = frng.uniform();
    const double stall_u = frng.uniform();
    // Records 2..4 exist in every session shape (client.h fault contract).
    const auto fault_rec = static_cast<std::uint32_t>(2 + frng.below(3));

    SyncClient::SessionSpec spec;
    const bool is_compare = kind_u < cfg.compare_frac;
    spec.kind = is_compare ? SessionKind::kCompare : session_kind_of(cfg.kind);
    spec.pull = !is_compare && pull_u < cfg.pull_frac;
    spec.stop_and_wait = cfg.stop_and_wait;
    spec.replica = shared_u < cfg.shared_frac
                       ? static_cast<std::uint32_t>(replica_u)
                       : k % cfg.replicas;
    spec.mine = &mine;
    spec.own_site = own;
    if (kill_u < cfg.kill_prob) {
      spec.fault = {SyncClient::FaultPlan::Kind::kKill, fault_rec, 0};
    } else if (stall_u < cfg.stall_prob) {
      spec.fault = {SyncClient::FaultPlan::Kind::kStall, fault_rec, cfg.stall_ms};
    }

    for (std::uint64_t d = 0; d < delta; ++d) mine.record_update(own);

    if (cfg.think_us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(cfg.think_us));
    }
    if (!cl.connected()) {  // a prior kill dropped the connection
      err.clear();
      if (!cl.connect(&err)) {
        note_error(o, "reconnect: " + err);
        return;
      }
    }

    ++o.attempted;
    if (is_compare) {
      ++o.compare_sessions;
    } else if (spec.pull) {
      ++o.pull_sessions;
    } else {
      ++o.push_sessions;
    }

    const auto t0 = Clock::now();
    const SyncClient::SessionResult res = cl.run_session(spec);
    const auto t1 = Clock::now();

    o.bytes_tx += res.bytes_tx;
    o.bytes_rx += res.bytes_rx;
    if (res.stalled) ++o.stalled;
    if (res.killed) {
      ++o.killed;
    } else if (res.ok) {
      ++o.completed;
      o.lat_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
      if (res.transfer) ++o.transfers;
      if (res.done == DoneStatus::kNoop) ++o.noops;
      o.elems_sent += res.elems_sent;
      o.elems_applied += res.elems_applied;
    } else {
      note_error(o, res.error.empty() ? "session failed" : res.error);
      cl.close();  // resync the connection before the next session
    }
  }
}

double pct(const std::vector<std::uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted_ns.size() - 1));
  return static_cast<double>(sorted_ns[idx]) / 1000.0;
}

void write_summary_fields(obs::JsonWriter& w, const LoadReport& r) {
  w.field("attempted", r.attempted)
      .field("completed", r.completed)
      .field("killed", r.killed)
      .field("stalled", r.stalled)
      .field("errors", r.errors)
      .field("compare_sessions", r.compare_sessions)
      .field("push_sessions", r.push_sessions)
      .field("pull_sessions", r.pull_sessions);
}

}  // namespace

LoadReport run_load(const LoadConfig& cfg) {
  std::vector<ClientOutcome> outcomes(cfg.clients);
  const auto t0 = Clock::now();
  {
    // One thread per client: every client must run concurrently (they block
    // in poll), so the pool size equals the client count exactly.
    rt::ThreadPool pool(cfg.clients == 0 ? 1 : cfg.clients);
    pool.for_each_index(outcomes.size(),
                        [&](std::size_t k) { run_client(cfg, static_cast<unsigned>(k), outcomes[k]); });
  }
  const auto t1 = Clock::now();

  LoadReport r;
  std::vector<std::uint64_t> lat;
  for (const auto& o : outcomes) {
    r.attempted += o.attempted;
    r.completed += o.completed;
    r.killed += o.killed;
    r.stalled += o.stalled;
    r.errors += o.errors;
    r.compare_sessions += o.compare_sessions;
    r.push_sessions += o.push_sessions;
    r.pull_sessions += o.pull_sessions;
    r.transfers += o.transfers;
    r.noops += o.noops;
    r.elems_sent += o.elems_sent;
    r.elems_applied += o.elems_applied;
    r.bytes_tx += o.bytes_tx;
    r.bytes_rx += o.bytes_rx;
    lat.insert(lat.end(), o.lat_ns.begin(), o.lat_ns.end());
    if (r.first_error.empty()) r.first_error = o.first_error;
  }
  std::sort(lat.begin(), lat.end());
  r.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
  if (r.elapsed_s > 0) {
    r.sessions_per_s = static_cast<double>(r.completed) / r.elapsed_s;
    r.bytes_per_s = static_cast<double>(r.bytes_tx + r.bytes_rx) / r.elapsed_s;
  }
  r.p50_us = pct(lat, 0.50);
  r.p90_us = pct(lat, 0.90);
  r.p99_us = pct(lat, 0.99);
  r.p999_us = pct(lat, 0.999);
  r.max_us = lat.empty() ? 0.0 : static_cast<double>(lat.back()) / 1000.0;
  return r;
}

std::string summary_json(const LoadConfig& cfg, const LoadReport& r) {
  obs::JsonWriter w;
  w.begin_object()
      .field("schema", "optrep.load.summary/v1")
      .field("seed", cfg.seed)
      .field("clients", std::uint64_t{cfg.clients})
      .field("sessions_per_client", cfg.sessions_per_client)
      .field("kind", to_string(session_kind_of(cfg.kind)))
      .field("stop_and_wait", cfg.stop_and_wait)
      .field("kill_prob", cfg.kill_prob)
      .field("stall_prob", cfg.stall_prob);
  write_summary_fields(w, r);
  w.end_object();
  return w.take();
}

std::string report_json(const LoadConfig& cfg, const LoadReport& r,
                        const ServerStats* server) {
  obs::JsonWriter w;
  w.begin_object().field("schema", "optrep.serve/v1");

  w.key("config").begin_object();
  w.field("host", cfg.host)
      .field("port", std::uint64_t{cfg.port})
      .field("kind", to_string(session_kind_of(cfg.kind)))
      .field("clients", std::uint64_t{cfg.clients})
      .field("sessions_per_client", cfg.sessions_per_client)
      .field("replicas", cfg.replicas)
      .field("compare_frac", cfg.compare_frac)
      .field("pull_frac", cfg.pull_frac)
      .field("shared_frac", cfg.shared_frac)
      .field("max_delta", cfg.max_delta)
      .field("think_us", cfg.think_us)
      .field("stop_and_wait", cfg.stop_and_wait)
      .field("io_chunk", std::uint64_t{cfg.io_chunk})
      .field("seed", cfg.seed)
      .field("kill_prob", cfg.kill_prob)
      .field("stall_prob", cfg.stall_prob)
      .field("stall_ms", cfg.stall_ms)
      .field("timeout_ms", std::int64_t{cfg.timeout_ms});
  w.end_object();

  w.key("summary").begin_object();
  write_summary_fields(w, r);
  w.end_object();

  w.key("stats").begin_object();
  w.field("transfers", r.transfers)
      .field("noops", r.noops)
      .field("elems_sent", r.elems_sent)
      .field("elems_applied", r.elems_applied)
      .field("bytes_tx", r.bytes_tx)
      .field("bytes_rx", r.bytes_rx)
      .field("first_error", r.first_error);
  w.end_object();

  w.key("latency_us").begin_object();
  w.field("p50", r.p50_us)
      .field("p90", r.p90_us)
      .field("p99", r.p99_us)
      .field("p999", r.p999_us)
      .field("max", r.max_us);
  w.end_object();

  w.key("throughput").begin_object();
  w.field("elapsed_s", r.elapsed_s)
      .field("sessions_per_s", r.sessions_per_s)
      .field("bytes_per_s", r.bytes_per_s);
  w.end_object();

  if (server != nullptr) {
    const ServerStats& s = *server;
    w.key("server").begin_object();
    w.field("conns_accepted", s.conns_accepted)
        .field("conns_closed", s.conns_closed)
        .field("hellos", s.hellos)
        .field("bad_hellos", s.bad_hellos)
        .field("sessions_completed", s.sessions_completed)
        .field("sessions_aborted", s.sessions_aborted)
        .field("compare_sessions", s.compare_sessions)
        .field("push_sessions", s.push_sessions)
        .field("pull_sessions", s.pull_sessions)
        .field("commits", s.commits)
        .field("noops", s.noops)
        .field("capacity_rejects", s.capacity_rejects)
        .field("parked", s.parked)
        .field("bytes_rx", s.bytes_rx)
        .field("bytes_tx", s.bytes_tx)
        .field("decode_errors", s.decode_errors)
        .field("backpressure_pauses", s.backpressure_pauses);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

}  // namespace optrep::net
