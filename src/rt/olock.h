// OptiQL-style versioned optimistic lock (Wang et al., "OptiQL: Robust
// Optimistic Locking for Memory-Optimized Indexes"; see SNIPPETS.md §2).
//
// One 64-bit word packs a version epoch and a locked bit:
//
//     bit 0      locked   (a writer holds the lock)
//     bits 1..63 version  (bumped by +1 logical epoch on every unlock)
//
// Readers never write the word: read_begin() spins past an in-flight writer
// and returns an even snapshot; the caller then reads the protected payload
// through acquire loads (std::atomic_ref in vv::RotatingVector /
// vv::FlatSiteIndex) and calls read_validate(snapshot), which succeeds iff
// the word is unchanged — i.e. no writer acquired the lock in between.
//
// Writers serialize through an MCS-like compact queue: lock(QNode&) enqueues
// a stack-allocated node with an atomic exchange on tail_ and spins only on
// its OWN node's ready flag, never on the shared version word (OptiQL's
// "opportunistic read" queue discipline — waiting writers do not inflate
// reader retry rates or bounce the version cache line). unlock() publishes
// the new version with a release store and hands the lock to the queue
// successor. No allocation ever happens on the lock/unlock path: the queue
// node lives in the caller's frame and the lock itself is two words plus
// counters.
//
// Memory-model note (same fence-free discipline as rt::ProgressCell, which
// exists because GCC rejects atomic_thread_fence under -fsanitize=thread):
// a writer sets the locked bit BEFORE its payload stores (program order) and
// performs payload stores with release; readers load payload with acquire.
// If a reader's payload load observes a value from writer generation g, that
// acquire load synchronizes-with the writer's release store, so everything
// the writer did before it — including setting the locked bit — happens
// before the reader's subsequent read_validate() load, which by coherence
// must then observe the locked/advanced word and fail validation. A reader
// whose validate load returns the begin snapshot therefore observed payload
// entirely from one committed epoch: no torn reads, no fences, TSan-clean.
//
// Contention behavior is surfaced through three relaxed counters
// (acquisitions / opt_retries / queue_waits) that callers publish into the
// obs metrics registry as rt.olock.* — see repl::StateSystem and
// bench_contention.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/check.h"

namespace optrep::rt {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

class OLock {
 public:
  // Writer queue node; lives on the caller's stack for the duration of the
  // critical section. A node enrolled via lock() MUST be passed to the
  // matching unlock() and must outlive it.
  struct QNode {
    std::atomic<QNode*> next{nullptr};
    std::atomic<bool> ready{false};
  };

  // Monotonic, relaxed contention counters. Snapshots are exact only when no
  // operation is in flight (e.g. after a join); mid-run reads are advisory.
  struct Counters {
    std::uint64_t acquisitions = 0;  // successful writer lock() calls
    std::uint64_t opt_retries = 0;   // reader begin-blocked or validate-failed
    std::uint64_t queue_waits = 0;   // lock() calls that found a predecessor
  };

  OLock() = default;
  OLock(const OLock&) = delete;
  OLock& operator=(const OLock&) = delete;

  // ---- Optimistic readers -------------------------------------------------

  // Returns an unlocked (even) snapshot of the version word, spinning past
  // any in-flight writer. Counts at most one opt_retry per call for the
  // initial locked observation.
  std::uint64_t read_begin() const {
    std::uint64_t w = word_.load(std::memory_order_acquire);
    if ((w & kLockedBit) != 0) {
      opt_retries_.fetch_add(1, std::memory_order_relaxed);
      do {
        cpu_relax();
        w = word_.load(std::memory_order_acquire);
      } while ((w & kLockedBit) != 0);
    }
    return w;
  }

  // True iff no writer acquired the lock since the matching read_begin();
  // on failure the caller rereads under a fresh snapshot (or falls back to
  // the writer queue after a bounded number of attempts).
  bool read_validate(std::uint64_t snapshot) const {
    const std::uint64_t w = word_.load(std::memory_order_acquire);
    if (w == snapshot) return true;
    opt_retries_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  // Current version epoch (bits 1..63); test/diagnostic use.
  std::uint64_t version() const {
    return word_.load(std::memory_order_acquire) >> 1;
  }

  bool locked() const {
    return (word_.load(std::memory_order_acquire) & kLockedBit) != 0;
  }

  // ---- Writer queue -------------------------------------------------------

  void lock(QNode& node) const {
    node.next.store(nullptr, std::memory_order_relaxed);
    node.ready.store(false, std::memory_order_relaxed);
    QNode* prev = tail_.exchange(&node, std::memory_order_acq_rel);
    if (prev != nullptr) {
      queue_waits_.fetch_add(1, std::memory_order_relaxed);
      prev->next.store(&node, std::memory_order_release);
      while (!node.ready.load(std::memory_order_acquire)) cpu_relax();
    }
    // We own the lock. Set the locked bit before any payload store (program
    // order + release payload stores make it visible to validating readers;
    // see the memory-model note above).
    const std::uint64_t w = word_.load(std::memory_order_relaxed);
    OPTREP_CHECK((w & kLockedBit) == 0);
    word_.store(w | kLockedBit, std::memory_order_relaxed);
    acquisitions_.fetch_add(1, std::memory_order_relaxed);
  }

  void unlock(QNode& node) const {
    // Publish the new epoch: clear the locked bit and advance the version.
    // Release so every payload store in the critical section happens-before
    // any reader that begins at (or validates against) the new word.
    const std::uint64_t w = word_.load(std::memory_order_relaxed);
    OPTREP_CHECK((w & kLockedBit) != 0);
    word_.store((w & ~kLockedBit) + kVersionStep, std::memory_order_release);
    // Hand the queue to our successor (if any).
    QNode* next = node.next.load(std::memory_order_acquire);
    if (next == nullptr) {
      QNode* expected = &node;
      if (tail_.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return;  // queue empty: lock released outright
      }
      // A successor is mid-enqueue (exchanged tail_ but has not linked yet).
      do {
        cpu_relax();
        next = node.next.load(std::memory_order_acquire);
      } while (next == nullptr);
    }
    next->ready.store(true, std::memory_order_release);
  }

  // ---- Introspection ------------------------------------------------------

  Counters counters() const {
    Counters c;
    c.acquisitions = acquisitions_.load(std::memory_order_relaxed);
    c.opt_retries = opt_retries_.load(std::memory_order_relaxed);
    c.queue_waits = queue_waits_.load(std::memory_order_relaxed);
    return c;
  }

  void reset_counters() const {
    acquisitions_.store(0, std::memory_order_relaxed);
    opt_retries_.store(0, std::memory_order_relaxed);
    queue_waits_.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::uint64_t kLockedBit = 1;
  static constexpr std::uint64_t kVersionStep = 2;

  // mutable + const methods: structures embed the lock and expose it from
  // const read paths (readers of a const RotatingVector still validate).
  mutable std::atomic<std::uint64_t> word_{0};
  mutable std::atomic<QNode*> tail_{nullptr};
  mutable std::atomic<std::uint64_t> acquisitions_{0};
  mutable std::atomic<std::uint64_t> opt_retries_{0};
  mutable std::atomic<std::uint64_t> queue_waits_{0};
};

// RAII writer guard; the queue node lives inside the guard (stack frame).
class OLockGuard {
 public:
  explicit OLockGuard(const OLock& lock) : lock_(lock) { lock_.lock(node_); }
  ~OLockGuard() { lock_.unlock(node_); }
  OLockGuard(const OLockGuard&) = delete;
  OLockGuard& operator=(const OLockGuard&) = delete;

 private:
  const OLock& lock_;
  OLock::QNode node_;
};

// Run fn() as an optimistic read against one lock: snapshot, read, validate;
// retry up to max_tries. Returns true when a validated execution happened.
// On persistent interference the caller falls back to the writer queue
// (exclusive access also excludes writers, so a plain re-run is safe):
//
//   if (!optimistic_read(v.olock(), 8, read_fn)) {
//     rt::OLockGuard g(v.olock());   // reader joined the queue
//     read_fn();
//   }
//
// fn must be idempotent and must tolerate torn payload values (it re-runs;
// the structures guarantee memory-safe, defined-behavior reads via acquire
// atomics, not semantic consistency, until validation succeeds).
template <class Fn>
bool optimistic_read(const OLock& lock, unsigned max_tries, Fn&& fn) {
  for (unsigned t = 0; t < max_tries; ++t) {
    const std::uint64_t v = lock.read_begin();
    fn();
    if (lock.read_validate(v)) return true;
  }
  return false;
}

}  // namespace optrep::rt
