#include "rt/thread_pool.h"

namespace optrep::rt {

unsigned ThreadPool::hardware_threads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned threads) {
  threads_ = threads == 0 ? hardware_threads() : threads;
  workers_.reserve(threads_ - 1);
  for (unsigned w = 1; w < threads_; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::drain(const std::function<void(std::size_t, unsigned)>& fn,
                       std::size_t count, unsigned worker) {
  for (;;) {
    std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= count) return;
    fn(i, worker);
  }
}

void ThreadPool::for_each_index_worker(
    std::size_t count, const std::function<void(std::size_t, unsigned)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Inline path: no synchronization, identical to a plain loop.
    for (std::size_t i = 0; i < count; ++i) fn(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    OPTREP_CHECK(job_ == nullptr);  // no nested/concurrent dispatch
    job_ = &fn;
    job_count_ = count;
    next_.store(0, std::memory_order_relaxed);
    done_ = 0;
    ++generation_;
  }
  cv_start_.notify_all();
  drain(fn, count, 0);
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return done_ == workers_.size(); });
  job_ = nullptr;
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t, unsigned)>* fn = nullptr;
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      fn = job_;
      count = job_count_;
    }
    drain(*fn, count, worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (++done_ == workers_.size()) cv_done_.notify_one();
    }
  }
}

}  // namespace optrep::rt
