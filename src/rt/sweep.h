// Deterministic parallel sweeps over explicit configuration vectors, plus
// per-worker observability shards.
//
// parallel_sweep maps fn over a config vector on a ThreadPool and returns
// results in config order: each item writes only its own preallocated result
// slot, so the output is identical for any thread count or schedule. This is
// the shape every bench uses — build the config list up front, map it, then
// print/report rows sequentially.
//
// obs::Registry and prof::Profiler sinks are not safe (Registry) or not
// meaningful (one shared mutex) to share across workers, so ObsShards gives
// each worker its own pair; merge_into folds them after the join. Merging is
// commutative (counter adds, bucket-wise histogram adds, span rebasing), so
// the merged registry is schedule-independent; only wall-clock span values
// vary between runs, exactly as in single-threaded profiling.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "rt/thread_pool.h"

namespace optrep::rt {

// Seqlock-style progress cell: a worker publishes a small fixed vector of
// counters that any other thread (a progress reporter, the timeline
// harvester) can read mid-sweep without locks and without torn values.
//
// The writer bumps `seq` to odd, stores the payload, bumps back to even; the
// reader retries until it sees the same even seq on both sides of the copy.
// Unlike the classic seqlock, the payload words are themselves atomics — the
// seq handshake alone would be a data race under the C++ memory model (and
// under TSan, which gates this repo's CI). The fence-free variant is used
// because GCC rejects atomic_thread_fence under -fsanitize=thread: payload
// stores are release and payload loads acquire, so a word observed from a
// newer generation synchronizes-with the reader and forces the seq recheck
// to see the odd in-progress value (coherence), making torn reads retry;
// a clean first read of even seq s0 synchronizes with the publish that wrote
// s0, so every word load returns exactly generation s0.
struct ProgressCell {
  static constexpr std::size_t kWords = 4;
  // Payload layout (by convention; harvest() sums across shards):
  //   [0] runs completed  [1] sessions executed  [2] model bits  [3] checksum
  // where checksum = runs + sessions + bits, letting tests assert that a
  // concurrent read never observes a torn (mixed-generation) payload.
  std::array<std::atomic<std::uint64_t>, kWords> words{};
  std::atomic<std::uint32_t> seq{0};

  void publish(std::uint64_t runs, std::uint64_t sessions, std::uint64_t bits) {
    const std::uint32_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);  // odd: write in progress
    words[0].store(runs, std::memory_order_release);
    words[1].store(sessions, std::memory_order_release);
    words[2].store(bits, std::memory_order_release);
    words[3].store(runs + sessions + bits, std::memory_order_release);
    seq.store(s + 2, std::memory_order_release);  // even: stable
  }

  // Consistent snapshot; spins only while a publish is in flight.
  std::array<std::uint64_t, kWords> read() const {
    std::array<std::uint64_t, kWords> out{};
    for (;;) {
      const std::uint32_t s0 = seq.load(std::memory_order_acquire);
      if (s0 & 1u) continue;
      for (std::size_t i = 0; i < kWords; ++i) {
        out[i] = words[i].load(std::memory_order_acquire);
      }
      if (seq.load(std::memory_order_relaxed) == s0) return out;
    }
  }
};

class ObsShards {
 public:
  struct Shard {
    obs::Registry registry;
    prof::Profiler profiler;
    ProgressCell progress;  // live mid-sweep totals, readable from any thread
    explicit Shard(std::size_t profiler_capacity) : profiler(profiler_capacity) {}
  };

  explicit ObsShards(unsigned workers,
                     std::size_t profiler_capacity = prof::Profiler::kDefaultCapacity) {
    OPTREP_CHECK(workers > 0);
    shards_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      shards_.push_back(std::make_unique<Shard>(profiler_capacity));
    }
  }

  unsigned workers() const { return static_cast<unsigned>(shards_.size()); }
  Shard& shard(unsigned worker) { return *shards_[worker]; }
  obs::Registry& registry(unsigned worker) { return shards_[worker]->registry; }
  prof::Profiler& profiler(unsigned worker) { return shards_[worker]->profiler; }

  // Fold every shard into the given sinks (either may be null). Shards are
  // merged in worker order, but the result is order-independent for metrics;
  // profiler span order within the target ring follows merge order.
  void merge_into(obs::Registry* registry, prof::Profiler* profiler) {
    for (auto& s : shards_) {
      if (registry != nullptr) registry->merge_from(s->registry);
      if (profiler != nullptr) profiler->absorb(s->profiler);
    }
  }

  // Consistent sum of every shard's live ProgressCell. Safe to call from any
  // thread while workers are still publishing — each shard's snapshot is
  // internally consistent (its checksum word holds), though shards are read
  // at slightly different moments.
  std::array<std::uint64_t, ProgressCell::kWords> harvest_progress() const {
    std::array<std::uint64_t, ProgressCell::kWords> sum{};
    for (const auto& s : shards_) {
      const auto v = s->progress.read();
      for (std::size_t i = 0; i < ProgressCell::kWords; ++i) sum[i] += v[i];
    }
    return sum;
  }

 private:
  // unique_ptr for stable addresses (Profiler is not movable) and to keep
  // shards on separate allocations rather than false-sharing one array.
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Map fn(config, index) over configs on the pool; out[i] corresponds to
// configs[i] regardless of scheduling. Result must be default-constructible
// and move-assignable.
template <class Config, class Fn>
auto parallel_sweep(ThreadPool& pool, const std::vector<Config>& configs, Fn&& fn)
    -> std::vector<decltype(fn(configs[std::size_t{0}], std::size_t{0}))> {
  using Result = decltype(fn(configs[std::size_t{0}], std::size_t{0}));
  std::vector<Result> out(configs.size());
  pool.for_each_index(configs.size(),
                      [&](std::size_t i) { out[i] = fn(configs[i], i); });
  return out;
}

// As above with a per-worker observability shard passed to fn(config, index,
// shard). Pass work that records metrics or spans through here so no two
// workers ever touch the same Registry.
template <class Config, class Fn>
auto parallel_sweep(ThreadPool& pool, const std::vector<Config>& configs, ObsShards& shards,
                    Fn&& fn)
    -> std::vector<decltype(fn(configs[std::size_t{0}], std::size_t{0},
                               std::declval<ObsShards::Shard&>()))> {
  using Result = decltype(fn(configs[std::size_t{0}], std::size_t{0},
                             std::declval<ObsShards::Shard&>()));
  OPTREP_CHECK(shards.workers() >= pool.threads());
  std::vector<Result> out(configs.size());
  pool.for_each_index_worker(configs.size(), [&](std::size_t i, unsigned worker) {
    out[i] = fn(configs[i], i, shards.shard(worker));
  });
  return out;
}

}  // namespace optrep::rt
