// Deterministic parallel sweeps over explicit configuration vectors, plus
// per-worker observability shards.
//
// parallel_sweep maps fn over a config vector on a ThreadPool and returns
// results in config order: each item writes only its own preallocated result
// slot, so the output is identical for any thread count or schedule. This is
// the shape every bench uses — build the config list up front, map it, then
// print/report rows sequentially.
//
// obs::Registry and prof::Profiler sinks are not safe (Registry) or not
// meaningful (one shared mutex) to share across workers, so ObsShards gives
// each worker its own pair; merge_into folds them after the join. Merging is
// commutative (counter adds, bucket-wise histogram adds, span rebasing), so
// the merged registry is schedule-independent; only wall-clock span values
// vary between runs, exactly as in single-threaded profiling.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/prof.h"
#include "rt/thread_pool.h"

namespace optrep::rt {

class ObsShards {
 public:
  struct Shard {
    obs::Registry registry;
    prof::Profiler profiler;
    explicit Shard(std::size_t profiler_capacity) : profiler(profiler_capacity) {}
  };

  explicit ObsShards(unsigned workers,
                     std::size_t profiler_capacity = prof::Profiler::kDefaultCapacity) {
    OPTREP_CHECK(workers > 0);
    shards_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      shards_.push_back(std::make_unique<Shard>(profiler_capacity));
    }
  }

  unsigned workers() const { return static_cast<unsigned>(shards_.size()); }
  Shard& shard(unsigned worker) { return *shards_[worker]; }
  obs::Registry& registry(unsigned worker) { return shards_[worker]->registry; }
  prof::Profiler& profiler(unsigned worker) { return shards_[worker]->profiler; }

  // Fold every shard into the given sinks (either may be null). Shards are
  // merged in worker order, but the result is order-independent for metrics;
  // profiler span order within the target ring follows merge order.
  void merge_into(obs::Registry* registry, prof::Profiler* profiler) {
    for (auto& s : shards_) {
      if (registry != nullptr) registry->merge_from(s->registry);
      if (profiler != nullptr) profiler->absorb(s->profiler);
    }
  }

 private:
  // unique_ptr for stable addresses (Profiler is not movable) and to keep
  // shards on separate allocations rather than false-sharing one array.
  std::vector<std::unique_ptr<Shard>> shards_;
};

// Map fn(config, index) over configs on the pool; out[i] corresponds to
// configs[i] regardless of scheduling. Result must be default-constructible
// and move-assignable.
template <class Config, class Fn>
auto parallel_sweep(ThreadPool& pool, const std::vector<Config>& configs, Fn&& fn)
    -> std::vector<decltype(fn(configs[std::size_t{0}], std::size_t{0}))> {
  using Result = decltype(fn(configs[std::size_t{0}], std::size_t{0}));
  std::vector<Result> out(configs.size());
  pool.for_each_index(configs.size(),
                      [&](std::size_t i) { out[i] = fn(configs[i], i); });
  return out;
}

// As above with a per-worker observability shard passed to fn(config, index,
// shard). Pass work that records metrics or spans through here so no two
// workers ever touch the same Registry.
template <class Config, class Fn>
auto parallel_sweep(ThreadPool& pool, const std::vector<Config>& configs, ObsShards& shards,
                    Fn&& fn)
    -> std::vector<decltype(fn(configs[std::size_t{0}], std::size_t{0},
                               std::declval<ObsShards::Shard&>()))> {
  using Result = decltype(fn(configs[std::size_t{0}], std::size_t{0},
                             std::declval<ObsShards::Shard&>()));
  OPTREP_CHECK(shards.workers() >= pool.threads());
  std::vector<Result> out(configs.size());
  pool.for_each_index_worker(configs.size(), [&](std::size_t i, unsigned worker) {
    out[i] = fn(configs[i], i, shards.shard(worker));
  });
  return out;
}

}  // namespace optrep::rt
