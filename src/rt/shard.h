// Sharded wave scheduling for replica-disjoint parallel sessions.
//
// The repl batch engine (repl::StateSystem::run_batch) executes a spec-order
// list of operations, each declaring one write key (the replica it mutates)
// and at most one read key (the replica it reads). This header turns that
// list into a WavePlan:
//
//   - every item is assigned a SHARD by a SplitMix64 hash of its WRITE key,
//     so all writers of the same replica land in the same shard and are
//     executed there sequentially, in spec order;
//   - items are greedily packed, in spec order, into WAVES. An item joins the
//     current wave only if its read key is not written by the wave and its
//     write key is not read by the wave; otherwise the wave is sealed and a
//     new one starts (items never jump past a sealed wave — assignment is
//     order-preserving).
//
// Together this makes wave-parallel execution EXACTLY equivalent to
// sequential spec-order execution, independent of thread count:
//   - two items with the same write key share a shard (same hash), so their
//     mutations are ordered as in the spec;
//   - a read key never races a concurrent writer (wave rule), so every item
//     observes precisely the state a sequential execution would show it —
//     pre-wave state for replicas it does not own, same-shard spec-order
//     state for its own;
//   - waves are barriers: wave w+1 starts only after every shard of wave w
//     finished.
// The shard count is fixed (kDefaultShards), NOT derived from the thread
// count, so the shard assignment — and therefore the execution order within
// every shard — is identical for --threads=1..N; only which worker runs a
// shard varies. Commit-side effects are applied by the caller in spec order
// after each wave joins, exactly like parallel_sweep's config-order results.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace optrep::rt {

// SplitMix64 finalizer (same mix as task_seed in thread_pool.h): decorrelates
// adjacent (site, object) keys so shards load-balance.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

inline std::uint32_t shard_of(std::uint64_t write_key, std::uint32_t n_shards) {
  OPTREP_DCHECK(n_shards > 0);
  return static_cast<std::uint32_t>(mix64(write_key) % n_shards);
}

struct WaveItem {
  std::uint64_t write_key{0};  // replica this item mutates (required)
  std::uint64_t read_key{0};   // replica it reads, or 0 for none
};

struct WavePlan {
  // Fixed shard fan-out for replica partitioning. Chosen well above any
  // supported --threads so shard→worker mapping never constrains parallelism,
  // and kept thread-count independent so plans are deterministic.
  static constexpr std::uint32_t kDefaultShards = 64;

  struct Wave {
    // by_shard[s] = item indexes owned by shard s, in spec order. Sparse
    // shards hold empty vectors; `items` counts the wave's total.
    std::vector<std::vector<std::uint32_t>> by_shard;
    std::uint32_t items{0};
  };

  std::uint32_t n_shards{kDefaultShards};
  std::vector<Wave> waves;

  std::uint32_t max_wave_items() const {
    std::uint32_t m = 0;
    for (const Wave& w : waves) m = w.items > m ? w.items : m;
    return m;
  }
};

// Greedy spec-order packing (see file comment for the equivalence argument).
// Note the deliberately conservative rule: a read key that matches ANY write
// key already in the wave seals it, even when reader and writer would share a
// shard — simpler to reason about, and chained pipelines (anti-entropy ring
// passes) degrade to singleton waves rather than to subtle ordering bugs.
inline WavePlan plan_waves(const std::vector<WaveItem>& items,
                           std::uint32_t n_shards = WavePlan::kDefaultShards) {
  WavePlan plan;
  plan.n_shards = n_shards;
  std::unordered_set<std::uint64_t> writes;
  std::unordered_set<std::uint64_t> reads;
  auto open_wave = [&] {
    plan.waves.emplace_back();
    plan.waves.back().by_shard.resize(n_shards);
    writes.clear();
    reads.clear();
  };
  for (std::uint32_t i = 0; i < items.size(); ++i) {
    const WaveItem& it = items[i];
    const bool conflict = plan.waves.empty() ||
                          (it.read_key != 0 && writes.contains(it.read_key)) ||
                          reads.contains(it.write_key);
    if (conflict) open_wave();
    WavePlan::Wave& w = plan.waves.back();
    w.by_shard[shard_of(it.write_key, n_shards)].push_back(i);
    ++w.items;
    writes.insert(it.write_key);
    if (it.read_key != 0) reads.insert(it.read_key);
  }
  return plan;
}

}  // namespace optrep::rt
