// optrep::rt — a deterministic parallel runtime for sweeps and Monte-Carlo
// workloads.
//
// The repo's experiments are embarrassingly parallel at the *configuration*
// granularity: every bench sweep point and every independent sync-session
// sample is a pure function of its parameters and an explicit seed. ThreadPool
// runs those functions across cores while keeping the results byte-identical
// to a single-threaded run:
//
//   - work items are indexed; each writes only its own result slot, so the
//     assembled output is in item order no matter which worker ran what;
//   - randomness is derived per item with task_seed(base, index) (a SplitMix64
//     mix), never from a shared generator, so schedules cannot leak into
//     random streams;
//   - shared observability sinks are avoided: workers record into per-worker
//     shards (see rt/sweep.h) that merge commutatively at join.
//
// The pool is intentionally simple — one mutex-protected job slot dispatched
// by an atomic index counter. Sweep items are milliseconds to seconds of work,
// so queue overhead is irrelevant; what matters is that `threads = 1` runs
// inline on the caller with zero synchronization, keeping the default bench
// configuration exactly as deterministic (and profilable) as before.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.h"

namespace optrep::rt {

// Derive the seed for work item `task_index` from a base seed: a SplitMix64
// step over the pair. Independent of thread count and schedule by
// construction; distinct indexes give decorrelated xoshiro initial states
// because Rng itself re-expands the seed through SplitMix64.
constexpr std::uint64_t task_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (task_index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

class ThreadPool {
 public:
  // threads == 0 selects hardware_threads(). threads == 1 creates no worker
  // threads at all: every run executes inline on the calling thread.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const { return threads_; }
  static unsigned hardware_threads();

  // Execute fn(item) for every item in [0, count), distributed across the
  // pool; blocks until all items completed. The caller participates as worker
  // 0, so a pool of N threads uses N-1 spawned workers. Items must be
  // independent: they may run in any order, concurrently.
  void for_each_index(std::size_t count, const std::function<void(std::size_t)>& fn) {
    for_each_index_worker(count, [&fn](std::size_t i, unsigned) { fn(i); });
  }

  // As above, with the dense worker index (0 = caller, 1..threads-1 =
  // spawned workers) passed alongside — the key for per-worker shards.
  void for_each_index_worker(std::size_t count,
                             const std::function<void(std::size_t, unsigned)>& fn);

 private:
  void worker_loop(unsigned worker);
  // Pull-and-run items of the current job until exhausted.
  void drain(const std::function<void(std::size_t, unsigned)>& fn, std::size_t count,
             unsigned worker);

  unsigned threads_{1};
  std::vector<std::thread> workers_;

  // Job slot, guarded by mu_. A job is dispatched by bumping generation_;
  // workers grab indexes from next_ and report completion through done_.
  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_{0};
  const std::function<void(std::size_t, unsigned)>* job_{nullptr};
  std::size_t job_count_{0};
  std::atomic<std::size_t> next_{0};
  std::size_t done_{0};
  bool stop_{false};
};

// parallel_for: fn(i) for i in [begin, end), across the pool.
template <class Fn>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end, Fn&& fn) {
  OPTREP_CHECK(begin <= end);
  pool.for_each_index(end - begin, [&](std::size_t i) { fn(begin + i); });
}

}  // namespace optrep::rt
