// Deterministic pseudo-random generation for workloads and property tests.
//
// xoshiro256** seeded through SplitMix64. Every workload, test, and benchmark
// in this repository derives its randomness from an explicit seed so runs are
// exactly reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace optrep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  std::uint64_t below(std::uint64_t bound) {
    OPTREP_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    OPTREP_DCHECK(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  // True with probability p (p in [0,1]).
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return to_unit(next()) < p;
  }

  double uniform() { return to_unit(next()); }

  // Uniformly chosen element of a non-empty vector.
  template <class T>
  const T& pick(const std::vector<T>& v) {
    OPTREP_DCHECK(!v.empty());
    return v[below(v.size())];
  }

  // Derive an independent child generator (for per-site streams).
  Rng fork() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  static double to_unit(std::uint64_t r) {
    return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
  }

  std::uint64_t state_[4]{};
};

}  // namespace optrep
