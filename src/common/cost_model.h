// Wire-size accounting in model bits, following the cost model of §3.3.
//
// The paper treats site names as log n bits and element values as log m bits
// (both "fixed length", assumption ii of §3.3), and states communication
// upper bounds in Table 2 in exactly these units:
//
//   BRV:  n·log(2mn) + 2              — n elements of 1+log n+log m bits, +HALT
//   CRV:  n·log(4mn) + 2              — elements carry one extra conflict bit
//   SRV:  n·log(8mn) + n·log(2n) + 1  — +segment bit, plus ≤n SKIP messages
//                                        of 1+log n bits each
//   COMPARE: 2·log(mn)                — one element each way
//
// CostModel reproduces these numbers: every protocol message computes its
// size from it. Benches additionally report a byte-aligned "realistic"
// encoding (see wire_bytes_* helpers) so both views are available.
#pragma once

#include <cstdint>

#include "common/check.h"

namespace optrep {

constexpr std::uint32_t ceil_log2(std::uint64_t x) {
  // ceil(log2(x)) with the paper's convention that a field always occupies at
  // least one bit (log of 1 site / 1 update still needs a symbol).
  if (x <= 2) return 1;
  std::uint32_t bits = 0;
  std::uint64_t v = x - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits;
}

struct CostModel {
  // Number of sites (n) and per-site updates (m) used to size fields.
  std::uint64_t n{2};
  std::uint64_t m{2};

  constexpr std::uint32_t site_bits() const { return ceil_log2(n); }
  constexpr std::uint32_t value_bits() const { return ceil_log2(m); }

  // One element on the wire: a type/continue flag, site name, value, plus
  // zero (BRV), one (CRV: conflict) or two (SRV: conflict+segment) bits.
  constexpr std::uint64_t elem_bits(std::uint32_t extra_flag_bits) const {
    return 1 + site_bits() + value_bits() + extra_flag_bits;
  }

  // HALT: message-type flag + terminator bit. Matches the "+2" in Table 2.
  constexpr std::uint64_t halt_bits() const { return 2; }

  // SKIP carries the segment index: log(2n) = 1 + log n bits (§4.1 bound).
  constexpr std::uint64_t skip_bits() const { return 1 + site_bits(); }

  // Stop-and-wait acknowledgement (not part of the paper's pipelined
  // algorithms; used by the pipelining ablation). Two bits, matching the
  // '01' codeword of the wire codec (vv/codec.h).
  constexpr std::uint64_t ack_bits() const { return 2; }

  // COMPARE exchanges one element (site+value) in each direction: the
  // 2·log(mn) figure of §3.3.
  constexpr std::uint64_t compare_probe_bits() const {
    return site_bits() + value_bits();
  }

  // Table 2 closed-form upper bounds, for checking measured traffic against.
  constexpr std::uint64_t brv_upper_bound_bits() const {
    return n * elem_bits(0) + 2;
  }
  constexpr std::uint64_t crv_upper_bound_bits() const {
    return n * elem_bits(1) + 2;
  }
  constexpr std::uint64_t srv_upper_bound_bits() const {
    return n * elem_bits(2) + n * skip_bits() + 1;
  }
};

// A realistic byte-aligned encoding, reported alongside model bits: 1-byte
// message tag + 4-byte site + 8-byte value (+1 flags byte when present).
constexpr std::uint64_t wire_bytes_elem(bool has_flags) {
  return 1 + 4 + 8 + (has_flags ? 1 : 0);
}
constexpr std::uint64_t wire_bytes_halt() { return 1; }
constexpr std::uint64_t wire_bytes_skip() { return 1 + 4; }
constexpr std::uint64_t wire_bytes_ack() { return 1; }

}  // namespace optrep
