// Internal invariant checking.
//
// OPTREP_CHECK is always on (the protocols here are subtle enough that silent
// corruption is worse than an abort in production); OPTREP_DCHECK compiles
// out in release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace optrep::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "optrep: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace optrep::detail

#define OPTREP_CHECK(expr)                                                \
  do {                                                                    \
    if (!(expr)) ::optrep::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define OPTREP_CHECK_MSG(expr, msg)                                        \
  do {                                                                     \
    if (!(expr)) ::optrep::detail::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (0)

#ifdef NDEBUG
#define OPTREP_DCHECK(expr) \
  do {                      \
  } while (0)
#else
#define OPTREP_DCHECK(expr) OPTREP_CHECK(expr)
#endif
