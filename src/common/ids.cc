#include "common/ids.h"

namespace optrep {

std::string site_name(SiteId site) {
  if (site.value < 26) return std::string(1, static_cast<char>('A' + site.value));
  return "S" + std::to_string(site.value);
}

std::string update_name(UpdateId id) {
  return site_name(id.site) + ":" + std::to_string(id.seq);
}

}  // namespace optrep
