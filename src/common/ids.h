// Strongly-typed identifiers used throughout optrep.
//
// The paper's system model (§2.1) names sites with letters and identifies
// updates by (site, per-site sequence number). We use 32-bit site ids with an
// optional pretty-name registry for figure reproduction, and 64-bit packed
// update ids.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace optrep {

// Tagged integral id. The tag type makes SiteId / ObjectId / etc. mutually
// unassignable while keeping them trivially copyable value types.
template <class Tag, class Rep = std::uint32_t>
struct Id {
  using rep_type = Rep;

  Rep value{0};

  constexpr Id() = default;
  constexpr explicit Id(Rep v) : value(v) {}

  friend constexpr auto operator<=>(Id, Id) = default;
};

struct SiteTag {};
struct ObjectTag {};

// A participating site (§2.1): stores at most one replica per object.
using SiteId = Id<SiteTag>;
// A replicated object: a database, file, or log entry (§2.1).
using ObjectId = Id<ObjectTag>;

// Identifies one update: the s-th update made on site `site`. Sequence
// numbers start at 1 so that UpdateId{} (all zero) is "no update".
struct UpdateId {
  SiteId site{};
  std::uint64_t seq{0};

  friend constexpr auto operator<=>(const UpdateId&, const UpdateId&) = default;
};

// Pretty-printing for examples and figure reproduction: sites 0..25 render as
// A..Z like the paper, larger ids as S<k>.
std::string site_name(SiteId site);
std::string update_name(UpdateId id);

}  // namespace optrep

template <class Tag, class Rep>
struct std::hash<optrep::Id<Tag, Rep>> {
  std::size_t operator()(optrep::Id<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};

template <>
struct std::hash<optrep::UpdateId> {
  std::size_t operator()(const optrep::UpdateId& id) const noexcept {
    // Splittable 64-bit mix of (site, seq); good enough for hash tables.
    std::uint64_t x = (std::uint64_t{id.site.value} << 40) ^ id.seq;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x);
  }
};
