// A move-only callable with fixed inline storage — no heap, ever.
//
// std::function heap-allocates any callable larger than its small-buffer
// optimization (16 bytes on common ABIs), which puts an allocator round trip
// on every simulated message delivery: the event closure captures the handler
// pointer plus a by-value VvMsg and overflows the SBO. FixedFunction stores
// the callable inline in a caller-chosen capacity and static_asserts at the
// construction site when a capture does not fit, so "this path does not
// allocate" is a compile-time property rather than a hope.
//
// Semantics: move-only (captured state is moved, never copied), empty state
// supported, calling an empty function is a checked error.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

#include "common/check.h"

namespace optrep {

template <class Sig, std::size_t Capacity = 64>
class FixedFunction;

template <class R, class... Args, std::size_t Capacity>
class FixedFunction<R(Args...), Capacity> {
 public:
  FixedFunction() = default;

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, FixedFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  FixedFunction(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    static_assert(sizeof(D) <= Capacity,
                  "callable does not fit FixedFunction inline storage; "
                  "raise Capacity or shrink the capture");
    static_assert(alignof(D) <= alignof(std::max_align_t));
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "captured state must be nothrow-movable");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    invoke_ = [](void* b, Args&&... args) -> R {
      return (*std::launder(reinterpret_cast<D*>(b)))(std::forward<Args>(args)...);
    };
    relocate_ = [](void* src, void* dst) {
      D* s = std::launder(reinterpret_cast<D*>(src));
      if (dst != nullptr) ::new (dst) D(std::move(*s));
      s->~D();
    };
  }

  FixedFunction(FixedFunction&& o) noexcept { move_from(o); }
  FixedFunction& operator=(FixedFunction&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  FixedFunction(const FixedFunction&) = delete;
  FixedFunction& operator=(const FixedFunction&) = delete;
  ~FixedFunction() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) const {
    OPTREP_DCHECK(invoke_ != nullptr);
    return invoke_(const_cast<unsigned char*>(buf_), std::forward<Args>(args)...);
  }

  void reset() {
    if (relocate_ != nullptr) relocate_(buf_, nullptr);
    invoke_ = nullptr;
    relocate_ = nullptr;
  }

 private:
  void move_from(FixedFunction& o) noexcept {
    if (o.relocate_ != nullptr) o.relocate_(o.buf_, buf_);
    invoke_ = o.invoke_;
    relocate_ = o.relocate_;
    o.invoke_ = nullptr;
    o.relocate_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  R (*invoke_)(void*, Args&&...) = nullptr;
  void (*relocate_)(void* src, void* dst) = nullptr;  // dst == nullptr: destroy
};

}  // namespace optrep
