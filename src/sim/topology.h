// Gossip mesh topologies for large-world scenarios.
//
// A Mesh is an undirected graph over sites 0..n-1, stored as a compact CSR
// adjacency (two u32 arrays — offsets and neighbor lists), so a 10^6-site
// ring is ~16 MB of flat memory rather than a node-and-pointer structure.
// Neighbor lists are sorted ascending and the whole construction is a pure
// function of (kind, n, degree, seed), which keeps every scenario run — and
// every committed bench baseline built on one — exactly reproducible.
//
// Four families, spanning the shapes the gossip literature cares about:
//   ring          k-nearest-neighbor ring lattice: maximum diameter, the
//                 worst case for epidemic spread (and the paper-style chain
//                 of pairwise reconciliations).
//   small-world   Watts–Strogatz: the ring lattice with each edge rewired to
//                 a uniform target with probability β — a few shortcuts
//                 collapse the diameter to O(log n).
//   scale-free    Barabási–Albert preferential attachment: hub-dominated
//                 degree distribution, the shape of real overlay networks.
//   geo           geo-clustered: dense fixed-size clusters (regions) whose
//                 gateways form a ring — intra-region gossip is cheap,
//                 cross-region traffic funnels through thin bridges.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace optrep::sim {

enum class MeshKind : std::uint8_t { kRing, kSmallWorld, kScaleFree, kGeoClustered };

constexpr std::string_view to_string(MeshKind k) {
  switch (k) {
    case MeshKind::kRing: return "ring";
    case MeshKind::kSmallWorld: return "small-world";
    case MeshKind::kScaleFree: return "scale-free";
    case MeshKind::kGeoClustered: return "geo";
  }
  return "?";
}

class Mesh {
 public:
  // k-nearest ring lattice: site i adjacent to i±1..±k (mod n). k is clamped
  // to (n-1)/2 so no pair appears twice.
  static Mesh ring(std::uint32_t n, std::uint32_t k) {
    OPTREP_CHECK_MSG(n >= 2, "mesh needs at least 2 sites");
    k = clamp_lattice_k(n, k);
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(n) * k);
    push_lattice(edges, n, k);
    return Mesh(MeshKind::kRing, n, std::move(edges));
  }

  // Watts–Strogatz: the ring lattice above, with each edge's far endpoint
  // rewired to a uniform random site with probability beta (self-loops and
  // duplicate edges re-rolled).
  static Mesh small_world(std::uint32_t n, std::uint32_t k, double beta, std::uint64_t seed) {
    OPTREP_CHECK_MSG(n >= 2, "mesh needs at least 2 sites");
    k = clamp_lattice_k(n, k);
    std::vector<std::vector<std::uint32_t>> adj(n);
    auto connected = [&](std::uint32_t a, std::uint32_t b) {
      return std::find(adj[a].begin(), adj[a].end(), b) != adj[a].end();
    };
    auto link = [&](std::uint32_t a, std::uint32_t b) {
      adj[a].push_back(b);
      adj[b].push_back(a);
    };
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 1; j <= k; ++j) link(i, (i + j) % n);
    }
    Rng rng(seed);
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 1; j <= k; ++j) {
        if (!rng.chance(beta)) continue;
        const std::uint32_t old = (i + j) % n;
        // A full row (degree n-1) has nowhere to rewire to; skip it.
        if (adj[i].size() >= n - 1) continue;
        std::uint32_t t;
        do {
          t = static_cast<std::uint32_t>(rng.below(n));
        } while (t == i || connected(i, t));
        if (!connected(i, old)) continue;  // already rewired away by the peer
        unlink(adj, i, old);
        link(i, t);
      }
    }
    return Mesh(MeshKind::kSmallWorld, n, collect(adj));
  }

  // Barabási–Albert: seed clique on m+1 sites, then each new site attaches m
  // edges to targets drawn proportionally to degree (repeated-endpoint list
  // sampling), distinct per site.
  static Mesh scale_free(std::uint32_t n, std::uint32_t m, std::uint64_t seed) {
    OPTREP_CHECK_MSG(n >= 2, "mesh needs at least 2 sites");
    if (m < 1) m = 1;
    const std::uint32_t m0 = std::min(n, m + 1);
    std::vector<Edge> edges;
    std::vector<std::uint32_t> endpoints;  // each edge contributes both ends
    edges.reserve(static_cast<std::size_t>(n) * m);
    endpoints.reserve(2 * static_cast<std::size_t>(n) * m);
    auto add = [&](std::uint32_t a, std::uint32_t b) {
      edges.push_back(Edge{a, b});
      endpoints.push_back(a);
      endpoints.push_back(b);
    };
    for (std::uint32_t i = 0; i < m0; ++i) {
      for (std::uint32_t j = i + 1; j < m0; ++j) add(i, j);
    }
    Rng rng(seed);
    std::vector<std::uint32_t> chosen;
    for (std::uint32_t i = m0; i < n; ++i) {
      chosen.clear();
      const std::uint32_t want = std::min(m, i);
      while (chosen.size() < want) {
        std::uint32_t t = endpoints[rng.below(endpoints.size())];
        // Preferential draws can collide on hubs; past a few tries fall back
        // to a uniform draw so construction always terminates.
        for (int tries = 0;
             (t == i || std::find(chosen.begin(), chosen.end(), t) != chosen.end()) &&
             tries < 16;
             ++tries) {
          t = endpoints[rng.below(endpoints.size())];
        }
        while (t == i || std::find(chosen.begin(), chosen.end(), t) != chosen.end()) {
          t = static_cast<std::uint32_t>(rng.below(i));
        }
        chosen.push_back(t);
      }
      for (const std::uint32_t t : chosen) add(i, t);
    }
    return Mesh(MeshKind::kScaleFree, n, std::move(edges));
  }

  // Geo-clustered: consecutive blocks of `cluster` sites form dense regions
  // (internal k-ring lattice); the first site of each region is its gateway,
  // and the gateways form a ring. `seed` shifts the gateway ring's chords so
  // different worlds do not share the exact bridge set.
  static Mesh geo_clustered(std::uint32_t n, std::uint32_t cluster, std::uint32_t k,
                            std::uint64_t seed) {
    OPTREP_CHECK_MSG(n >= 2, "mesh needs at least 2 sites");
    if (cluster < 2) cluster = 2;
    if (cluster > n) cluster = n;
    std::vector<Edge> edges;
    const std::uint32_t n_clusters = (n + cluster - 1) / cluster;
    std::vector<std::uint32_t> gateways;
    gateways.reserve(n_clusters);
    for (std::uint32_t base = 0; base < n; base += cluster) {
      const std::uint32_t size = std::min(cluster, n - base);
      const std::uint32_t kk = clamp_lattice_k(size, k);
      if (size >= 2) push_lattice(edges, size, kk, base);
      gateways.push_back(base);
    }
    if (n_clusters >= 2) {
      Rng rng(seed);
      const std::uint32_t shift = static_cast<std::uint32_t>(rng.below(n_clusters));
      for (std::uint32_t c = 0; c < n_clusters; ++c) {
        const std::uint32_t a = gateways[c];
        const std::uint32_t b = gateways[(c + 1) % n_clusters];
        if (a != b && (n_clusters > 2 || c == 0)) edges.push_back(Edge{a, b});
        // One long-range chord per gateway keeps the region ring's diameter
        // sub-linear in the cluster count.
        if (n_clusters > 3) {
          const std::uint32_t far = gateways[(c + shift % (n_clusters - 2) + 2) % n_clusters];
          if (far != a) edges.push_back(Edge{a, far});
        }
      }
    }
    return Mesh(MeshKind::kGeoClustered, n, std::move(edges));
  }

  // Uniform entry point used by the CLI and benches: one `degree` knob per
  // family (lattice k, WS k with β=0.1, BA attachment m, geo intra-region k
  // with 64-site regions).
  static Mesh build(MeshKind kind, std::uint32_t n, std::uint32_t degree, std::uint64_t seed) {
    switch (kind) {
      case MeshKind::kRing: return ring(n, degree);
      case MeshKind::kSmallWorld: return small_world(n, degree, 0.1, seed);
      case MeshKind::kScaleFree: return scale_free(n, degree, seed);
      case MeshKind::kGeoClustered: return geo_clustered(n, 64, degree, seed);
    }
    OPTREP_CHECK_MSG(false, "unknown mesh kind");
    return ring(n, degree);
  }

  MeshKind kind() const { return kind_; }
  std::uint32_t sites() const { return n_; }
  std::uint64_t edge_count() const { return neighbors_.size() / 2; }

  std::uint32_t degree(std::uint32_t s) const { return offsets_[s + 1] - offsets_[s]; }
  std::uint32_t max_degree() const {
    std::uint32_t d = 0;
    for (std::uint32_t s = 0; s < n_; ++s) d = std::max(d, degree(s));
    return d;
  }
  // j-th neighbor of s (ascending site order), j < degree(s).
  std::uint32_t neighbor(std::uint32_t s, std::uint32_t j) const {
    return neighbors_[offsets_[s] + j];
  }

  // CSR footprint (offsets + neighbor arrays).
  std::uint64_t memory_bytes() const {
    return (offsets_.capacity() + neighbors_.capacity()) * sizeof(std::uint32_t);
  }

 private:
  struct Edge {
    std::uint32_t a, b;
  };

  static std::uint32_t clamp_lattice_k(std::uint32_t n, std::uint32_t k) {
    if (k < 1) k = 1;
    return std::min(k, (n - 1) / 2 == 0 ? 1u : (n - 1) / 2);
  }

  static void push_lattice(std::vector<Edge>& edges, std::uint32_t n, std::uint32_t k,
                           std::uint32_t base = 0) {
    for (std::uint32_t i = 0; i < n; ++i) {
      for (std::uint32_t j = 1; j <= k && j < n; ++j) {
        const std::uint32_t t = (i + j) % n;
        if (t != i) edges.push_back(Edge{base + i, base + t});
      }
    }
  }

  static void unlink(std::vector<std::vector<std::uint32_t>>& adj, std::uint32_t a,
                     std::uint32_t b) {
    auto drop = [](std::vector<std::uint32_t>& v, std::uint32_t x) {
      auto it = std::find(v.begin(), v.end(), x);
      if (it != v.end()) v.erase(it);
    };
    drop(adj[a], b);
    drop(adj[b], a);
  }

  static std::vector<Edge> collect(const std::vector<std::vector<std::uint32_t>>& adj) {
    std::vector<Edge> edges;
    for (std::uint32_t i = 0; i < adj.size(); ++i) {
      for (const std::uint32_t t : adj[i]) {
        if (i < t) edges.push_back(Edge{i, t});
      }
    }
    return edges;
  }

  // Normalize, dedupe, and lay the undirected edge list out as CSR with
  // ascending neighbor runs.
  Mesh(MeshKind kind, std::uint32_t n, std::vector<Edge> edges) : kind_(kind), n_(n) {
    for (Edge& e : edges) {
      if (e.a > e.b) std::swap(e.a, e.b);
    }
    std::sort(edges.begin(), edges.end(), [](const Edge& x, const Edge& y) {
      return x.a != y.a ? x.a < y.a : x.b < y.b;
    });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const Edge& x, const Edge& y) {
                              return x.a == y.a && x.b == y.b;
                            }),
                edges.end());
    offsets_.assign(n_ + 1, 0);
    for (const Edge& e : edges) {
      ++offsets_[e.a + 1];
      ++offsets_[e.b + 1];
    }
    for (std::uint32_t i = 0; i < n_; ++i) offsets_[i + 1] += offsets_[i];
    neighbors_.resize(edges.size() * 2);
    std::vector<std::uint32_t> fill(offsets_.begin(), offsets_.end() - 1);
    for (const Edge& e : edges) {
      neighbors_[fill[e.a]++] = e.b;
      neighbors_[fill[e.b]++] = e.a;
    }
    for (std::uint32_t s = 0; s < n_; ++s) {
      std::sort(neighbors_.begin() + offsets_[s], neighbors_.begin() + offsets_[s + 1]);
    }
  }

  MeshKind kind_{MeshKind::kRing};
  std::uint32_t n_{0};
  std::vector<std::uint32_t> offsets_;    // n+1 entries
  std::vector<std::uint32_t> neighbors_;  // 2·edge_count entries
};

}  // namespace optrep::sim
