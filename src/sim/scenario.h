// Large-world gossip scenario engine: 10^4–10^6 sites on a Mesh
// (sim/topology.h), every replica's rotating vector carved from one shared
// per-world Arena (vv/arena.h), driven by seeded peer-sampling anti-entropy
// with scripted churn / partition / flash-crowd disturbances.
//
// The world executes in synchronous gossip ROUNDS over a dirty-site queue:
// a site is dirty while it owes pushes to neighbors it has not contacted
// since its state last changed. Each round, every dirty site contacts one
// neighbor (per-site round-robin cursor, seeded start) and runs a push-pull
// exchange: one COMPARE charge, then a directed SYNC session (vv/session.h
// or graph/sync_graph.h) in whichever direction the relation demands —
// both directions for a concurrent pair under CRV/SRV. A site goes clean
// when it has pushed to every neighbor since its last change, so an empty
// dirty queue means every edge has equalized since the last update — and by
// the monotone-join argument, every connected component has converged.
// Work per round is O(dirty wavefront), not O(n): a 10^5-site ring runs its
// ~n/2-round convergence wave in seconds.
//
// Fidelity note (§2.2): the engine deliberately omits the post-reconciliation
// local increment the paper mandates after automatic conflict resolution.
// That increment makes every reconciling site a writer, growing vector width
// toward n — exactly what a 10^6-site world cannot afford; bounding the
// writer set (Config::writers) is what keeps replicas O(w). The cost is that
// Algorithm 1's front-dominance precondition does not hold for merged
// vectors, so exchanges decide relations with an exact element-wise
// comparison (vv::compare_full, local) while charging the COMPARE protocol
// price of 2·log(mn) bits — traffic accounting matches the paper's probe,
// decision soundness comes from the oracle. Convergence and |Δ| traffic are
// unaffected (the join lattice is the same); per-element conflict-bit
// placement after merges is the repl systems' fidelity job, not this
// layer's. SYNCG worlds are single-writer for the analogous reason: the
// sink-DFS of Algorithm 5 ships sink ancestors only, so divergent sinks
// would need per-exchange merge operations — a different (and much
// chattier) protocol than the paper's.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/cost_model.h"
#include "common/rng.h"
#include "graph/causal_graph.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/topology.h"
#include "vv/arena.h"
#include "vv/rotating_vector.h"
#include "vv/session.h"

namespace optrep::graph {
struct GraphSyncReport;  // graph/sync_graph.h — only the .cc runs graph syncs
}

namespace optrep::sim {

// BRV/CRV/SRV run rotating-vector state transfer; SYNCG runs causal-graph
// metadata sync (Algorithm 5) over the same mesh and phase scripts.
enum class ScenarioAlgo : std::uint8_t { kBrv, kCrv, kSrv, kSyncg };

constexpr std::string_view to_string(ScenarioAlgo a) {
  switch (a) {
    case ScenarioAlgo::kBrv: return "brv";
    case ScenarioAlgo::kCrv: return "crv";
    case ScenarioAlgo::kSrv: return "srv";
    case ScenarioAlgo::kSyncg: return "syncg";
  }
  return "?";
}

class ScenarioWorld {
 public:
  struct Config {
    ScenarioAlgo algo{ScenarioAlgo::kSrv};
    std::uint32_t sites{1024};
    // Writer pool: updates come from `writers` sites spread evenly over the
    // mesh. Bounds vector width at w (+ flash writers), which is what makes
    // 10^5-site replicas a few hundred bytes each.
    std::uint32_t writers{8};
    MeshKind mesh{MeshKind::kRing};
    std::uint32_t degree{1};
    std::uint64_t seed{1};
    vv::TransferMode mode{vv::TransferMode::kIdeal};
    NetConfig net{};
    CostModel cost{};
    // Extra reserve() headroom per replica beyond the writer pool — the
    // flash-crowd phase adds one-shot writers, and the optimistic-read
    // pinning contract (vv/rotating_vector.h) requires width to be reserved
    // up front.
    std::uint32_t extra_writers{0};
  };

  explicit ScenarioWorld(const Config& cfg);
  ScenarioWorld(const ScenarioWorld&) = delete;
  ScenarioWorld& operator=(const ScenarioWorld&) = delete;

  const Config& config() const { return cfg_; }
  const Mesh& mesh() const { return mesh_; }

  // ---- driving -----------------------------------------------------------

  // One local update at `site` (must be active): record_update on the
  // replica (or an appended graph op), advance the convergence oracle, and
  // mark the site dirty toward all its neighbors.
  void local_update(std::uint32_t site);

  // Next writer-pool site, round-robin, skipping offline sites.
  std::uint32_t next_writer();
  // j-th one-shot flash writer out of `total`, spread evenly over the mesh
  // (skips offline sites).
  std::uint32_t flash_site(std::uint32_t j, std::uint32_t total);

  // Run one gossip round over the current dirty set; returns the number of
  // exchanges performed. A no-op (returns 0) when no site is dirty.
  std::uint32_t gossip_round();

  // Partition the world into halves (site < n/2 vs the rest); cross-side
  // edges are blocked until healed. Healing marks every boundary site dirty
  // so the halves re-equalize.
  void set_partitioned(bool on);
  bool partitioned() const { return partitioned_; }

  // Take `count` random (seeded) active sites offline — they keep state but
  // neither initiate nor accept exchanges. bring_online reactivates all of
  // them, dirty, so they re-sync what they missed.
  void take_offline(std::uint32_t count);
  void bring_online();

  // ---- state -------------------------------------------------------------

  std::size_t dirty_count() const { return dirty_.size(); }
  bool converged() const { return eq_count_ == cfg_.sites; }
  std::uint32_t offline_count() const { return offline_; }

  struct Totals {
    std::uint64_t rounds{0};
    std::uint64_t updates{0};
    std::uint64_t compares{0};
    std::uint64_t sessions{0};       // directed SYNC sessions executed
    std::uint64_t bits{0};           // §3.3 model bits incl. COMPARE charges
    std::uint64_t wire_bytes{0};     // byte-aligned realistic encoding
    std::uint64_t msgs{0};
    std::uint64_t elems_applied{0};  // Σ|Δ| (vv algos)
    std::uint64_t nodes_applied{0};  // Σ new nodes (syncg)
    std::uint64_t reconciliations{0};  // concurrent pairs resolved (crv/srv)
    std::uint64_t conflicts_held{0};   // concurrent pairs brv/syncg cannot merge
  };
  const Totals& totals() const { return totals_; }

  // ---- observability -----------------------------------------------------

  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }

  const vv::Arena::Stats& arena_stats() const { return arena_.stats(); }
  // Σ RotatingVector::memory_bytes over all replicas (0 for syncg). O(n).
  std::uint64_t replica_memory_bytes() const;

  // Refresh the cheap (O(1)) instruments: scenario.* counters/gauges and the
  // rt.arena.* gauges. Called per timeline sample and at end of run.
  void publish_metrics();
  // Refresh the O(n) footprint gauge (scenario.replica_bytes). Split from
  // publish_metrics so hot sampling loops can choose their cadence.
  void publish_memory_metrics();

 private:
  bool is_vv() const { return cfg_.algo != ScenarioAlgo::kSyncg; }
  bool side(std::uint32_t s) const { return s >= cfg_.sites / 2; }
  bool edge_blocked(std::uint32_t a, std::uint32_t b) const {
    return partitioned_ && side(a) != side(b);
  }

  void mark_dirty(std::uint32_t s);
  // Push-pull exchange between s and its chosen neighbor; returns whether
  // (s, nb) changed state, so the round loop can reset their push debts.
  std::pair<bool, bool> exchange(std::uint32_t s, std::uint32_t nb);
  void accumulate(const vv::SyncReport& r);
  void accumulate(const graph::GraphSyncReport& r);

  // Convergence oracle: the element-wise supremum of all updates issued so
  // far (≤ writers + flash entries for vv; a node count for syncg), plus a
  // lazily-epoch-validated per-site equality flag. Updates bump the epoch
  // (every stale flag means "not converged"); exchanges refresh the flags of
  // the two endpoints they touched. At quiescence every site's last exchange
  // postdates the last update, so eq_count_ is exact.
  void sup_set(std::uint32_t site, std::uint64_t value);
  bool equals_sup(std::uint32_t s) const;
  void refresh_eq(std::uint32_t s);

  Config cfg_;
  Mesh mesh_;
  vv::Arena arena_;
  EventLoop loop_;
  obs::Registry metrics_;

  std::vector<vv::RotatingVector> replicas_;  // vv algos
  std::vector<graph::CausalGraph> graphs_;    // syncg
  std::vector<std::uint64_t> next_seq_;       // syncg per-site op sequence
  std::uint64_t total_nodes_{0};              // syncg oracle

  std::vector<std::uint32_t> writer_sites_;
  std::uint32_t writer_cursor_{0};

  std::vector<std::uint32_t> cursor_;     // per-site round-robin neighbor index
  std::vector<std::uint32_t> remaining_;  // pushes owed since last change
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> queued_;
  std::vector<std::uint32_t> dirty_;      // pending sites for the next round
  std::vector<std::uint32_t> round_;      // scratch: sites processed this round
  std::vector<std::uint32_t> offline_sites_;
  std::uint32_t offline_{0};
  bool partitioned_{false};

  std::vector<std::pair<std::uint32_t, std::uint64_t>> sup_;  // sorted by site
  std::vector<std::uint8_t> eq_;
  std::vector<std::uint64_t> eq_epoch_;
  std::uint64_t sup_epoch_{0};
  std::uint32_t eq_count_{0};

  Rng churn_rng_;
  Totals totals_;
};

}  // namespace optrep::sim
