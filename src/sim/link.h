// Simulated unidirectional network links and duplex channels.
//
// A Link has a propagation latency and a (possibly infinite) bandwidth and
// delivers messages FIFO: a message handed to the link at time t starts
// transmitting when the link is free, occupies the link for size/bandwidth
// seconds, and arrives latency seconds after its last bit left.
//
// Senders that want the paper's network pipelining (§3.1) stream by sending
// one message and scheduling their continuation at the returned free time;
// this is what lets a HALT cancel not-yet-transmitted elements, so the
// β = bandwidth·rtt overshoot of pipelining emerges from the model.
#pragma once

#include <functional>
#include <limits>

#include "common/check.h"
#include "sim/event_loop.h"

namespace optrep::sim {

struct LinkStats {
  std::uint64_t messages{0};
  std::uint64_t model_bits{0};   // §3.3 cost-model size
  std::uint64_t wire_bytes{0};   // realistic byte-aligned encoding
  std::uint64_t frames{0};       // coalesced wire frames (== messages unframed)
  std::uint64_t framed_wire_bytes{0};  // realistic bytes under frame batching
};

struct NetConfig {
  // Deterministic per-message fault injection (sim/fault_link.h). Rates are
  // independent probabilities rolled at delivery time, in this order:
  // corrupt → drop → duplicate → reorder. All zero (the default) disables
  // injection entirely — no generator is constructed and the delivery path
  // is bit-identical to the fault-free build.
  struct FaultConfig {
    double drop{0};       // message discarded
    double duplicate{0};  // a second copy delivered right after the first
    double reorder{0};    // delivery held back past later arrivals
    double corrupt{0};    // payload bit-flipped; detected and discarded (CRC)
    std::uint64_t seed{1};
    // How long a reordered message is held; 0 → one propagation latency
    // (plus ε so zero-latency links still reorder).
    Time reorder_hold_s{0};

    bool enabled() const {
      return drop > 0 || duplicate > 0 || reorder > 0 || corrupt > 0;
    }
  };

  Time latency_s{0};
  double bandwidth_bits_per_s{std::numeric_limits<double>::infinity()};
  // Maximum messages coalesced into one wire frame by FrameLink; 0 disables
  // framing (one frame, one encode, one delivery event per message — the
  // legacy Link behavior, byte- and event-identical).
  std::uint32_t frame_budget{0};
  FaultConfig faults{};

  Time rtt() const { return 2 * latency_s; }
};

template <class Msg>
class Link {
 public:
  using Handler = std::function<void(const Msg&)>;

  Link(EventLoop* loop, NetConfig cfg) : loop_(loop), cfg_(cfg) { OPTREP_CHECK(loop != nullptr); }

  // Scheduled delivery closures capture `this`; a moved-from Link would leave
  // them dangling, so Link is pinned to its construction address.
  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;
  Link(Link&&) = delete;
  Link& operator=(Link&&) = delete;

  void set_receiver(Handler h) { deliver_ = std::move(h); }

  // Observe every message as it is handed to the link (before transmission).
  // For protocol transcripts, debugging, and tests; does not affect timing.
  using Tap = std::function<void(Time send_time, const Msg&, std::uint64_t model_bits)>;
  void set_tap(Tap t) { tap_ = std::move(t); }

  // Queue msg for transmission; returns the time at which the link frees
  // (i.e. the earliest time the *next* message could start transmitting).
  Time send(const Msg& msg, std::uint64_t model_bits, std::uint64_t wire_bytes) {
    OPTREP_CHECK_MSG(deliver_ != nullptr, "link has no receiver");
    if (tap_) tap_(loop_->now(), msg, model_bits);
    const Time start = std::max(loop_->now(), free_at_);
    const Time xmit = transmit_seconds(model_bits);
    free_at_ = start + xmit;
    const Time arrive = free_at_ + cfg_.latency_s;
    stats_.messages += 1;
    stats_.model_bits += model_bits;
    stats_.wire_bytes += wire_bytes;
    // Copy the message into the delivery event. Capturing `this` (not a raw
    // handler pointer) is safe because Link is immovable.
    loop_->schedule(arrive, [this, msg] { deliver_(msg); });
    return free_at_;
  }

  Time free_at() const { return free_at_; }
  const LinkStats& stats() const { return stats_; }
  const NetConfig& config() const { return cfg_; }
  EventLoop* loop() const { return loop_; }

 private:
  Time transmit_seconds(std::uint64_t bits) const {
    if (cfg_.bandwidth_bits_per_s == std::numeric_limits<double>::infinity()) return 0;
    OPTREP_CHECK(cfg_.bandwidth_bits_per_s > 0);
    return static_cast<double>(bits) / cfg_.bandwidth_bits_per_s;
  }

  EventLoop* loop_;
  NetConfig cfg_;
  Time free_at_{0};
  LinkStats stats_;
  Handler deliver_;
  Tap tap_;
};

// A bidirectional channel between two protocol peers.
template <class Msg>
class Duplex {
 public:
  Duplex(EventLoop* loop, NetConfig cfg) : a_to_b_(loop, cfg), b_to_a_(loop, cfg) {}

  Link<Msg>& a_to_b() { return a_to_b_; }
  Link<Msg>& b_to_a() { return b_to_a_; }

 private:
  Link<Msg> a_to_b_;
  Link<Msg> b_to_a_;
};

}  // namespace optrep::sim
