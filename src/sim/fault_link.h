// Deterministic lossy-network fault injection.
//
// A FaultInjector interposes between a link's delivery callback and the
// receiving protocol actor. Faults act strictly at *delivery* time — after
// transmission committed — so link pacing, frame batching, and speculative
// send/revoke timing (sim/frame_link.h) are untouched; only what the
// receiver observes changes. Four independent fault classes, each rolled
// per message from one seeded stream (common/rng.h, xoshiro256**):
//
//   corrupt   payload is bit-flipped in flight. The model assumes a frame
//             checksum (CRC), so every corrupted message is *detected and
//             discarded*; an injectable Corrupter runs the real codec over
//             the flipped payload to record how many corruptions the typed
//             decoders would already catch without the checksum. Silent
//             (undetected) corruption is explicitly out of scope.
//   drop      message discarded.
//   duplicate a second copy is delivered immediately after the original
//             (scheduled at `now`, so it lands behind the current dispatch).
//   reorder   delivery is held back by `reorder_hold_s`, landing behind
//             messages that arrive within the hold.
//
// Duplicated/held copies are delivered directly — they are not re-rolled, so
// a session with f in-flight messages schedules at most 2f deliveries and
// every session terminates. Determinism: rolls are consumed in delivery
// order, which the event loop fixes, so a (seed, salt) pair reproduces the
// exact fault pattern.
#pragma once

#include <cstdint>
#include <functional>

#include "common/check.h"
#include "common/rng.h"
#include "sim/event_loop.h"
#include "sim/link.h"

namespace optrep::sim {

// Which fault class hit a message (for per-message observers; aggregate
// counts live in FaultStats).
enum class FaultKind : std::uint8_t { kDropped, kDuplicated, kReordered, kCorrupted };

struct FaultStats {
  std::uint64_t delivered{0};  // messages actually handed to the receiver
  std::uint64_t dropped{0};
  std::uint64_t duplicated{0};
  std::uint64_t reordered{0};
  std::uint64_t corrupted{0};             // corrupted in flight (all discarded)
  std::uint64_t corrupt_decode_errors{0};  // ...already rejected by the codec

  std::uint64_t injected() const { return dropped + duplicated + reordered + corrupted; }
};

// Distinct Rng streams for the two directions of a duplex, mixed with the
// attempt number so every retry observes an independent fault pattern.
inline std::uint64_t fault_stream_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t fault_attempt_seed(std::uint64_t seed, std::uint32_t attempt) {
  return fault_stream_seed(seed, 0x5e71ULL + attempt);
}

constexpr std::uint64_t kFaultSaltForward = 0x66D5;
constexpr std::uint64_t kFaultSaltReverse = 0x1A2B;

template <class Msg>
class FaultInjector {
 public:
  using Handler = std::function<void(const Msg&)>;
  // Applies a bit flip through the real wire codec; mutates the message to
  // the decoded corruption when decoding succeeds. Returns true when the
  // corruption was *detected* by the decoder (typed decode error).
  using Corrupter = std::function<bool(Msg&, Rng&)>;

  FaultInjector(EventLoop* loop, const NetConfig::FaultConfig& cfg, std::uint64_t stream_salt,
                Time default_hold_s)
      : loop_(loop),
        cfg_(cfg),
        rng_(fault_stream_seed(cfg.seed, stream_salt)),
        hold_s_(cfg.reorder_hold_s > 0 ? cfg.reorder_hold_s : default_hold_s) {
    OPTREP_CHECK(loop != nullptr);
  }

  // Injectors schedule closures capturing `this`; pin the address.
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void set_receiver(Handler h) { out_ = std::move(h); }
  void set_corrupter(Corrupter c) { corrupt_ = std::move(c); }

  // Per-message fault observer (obs::FlightRecorder annotations): called once
  // for every injected fault with the class, whether the typed codec caught a
  // corruption, and the affected message. Observation only — the delivery
  // outcome is already decided when it fires.
  using Observer = std::function<void(FaultKind, bool decode_error, const Msg&)>;
  void set_observer(Observer o) { observe_ = std::move(o); }

  // The link's delivery hook: roll faults, then forward (or not).
  void deliver(const Msg& m) {
    OPTREP_CHECK_MSG(out_ != nullptr, "fault injector has no receiver");
    if (cfg_.corrupt > 0 && rng_.chance(cfg_.corrupt)) {
      ++stats_.corrupted;
      bool decode_error = false;
      if (corrupt_) {
        Msg flipped = m;
        decode_error = corrupt_(flipped, rng_);
        if (decode_error) ++stats_.corrupt_decode_errors;
      }
      if (observe_) observe_(FaultKind::kCorrupted, decode_error, m);
      return;  // the checksum catches what the codec does not: discarded
    }
    if (cfg_.drop > 0 && rng_.chance(cfg_.drop)) {
      ++stats_.dropped;
      if (observe_) observe_(FaultKind::kDropped, false, m);
      return;
    }
    if (cfg_.duplicate > 0 && rng_.chance(cfg_.duplicate)) {
      ++stats_.duplicated;
      if (observe_) observe_(FaultKind::kDuplicated, false, m);
      // Lands after the current dispatch completes (same-time events run in
      // schedule order), i.e. right behind the original copy below.
      loop_->schedule(loop_->now(), [this, m] { hand_off(m); });
    }
    if (cfg_.reorder > 0 && rng_.chance(cfg_.reorder)) {
      ++stats_.reordered;
      if (observe_) observe_(FaultKind::kReordered, false, m);
      loop_->schedule(loop_->now() + hold_s_, [this, m] { hand_off(m); });
      return;
    }
    hand_off(m);
  }

  const FaultStats& stats() const { return stats_; }

 private:
  void hand_off(const Msg& m) {
    ++stats_.delivered;
    out_(m);
  }

  EventLoop* loop_;
  NetConfig::FaultConfig cfg_;
  Rng rng_;
  Time hold_s_;
  Handler out_;
  Corrupter corrupt_;
  Observer observe_;
  FaultStats stats_;
};

}  // namespace optrep::sim
