#include "sim/scenario.h"

#include <algorithm>

#include "graph/sync_graph.h"
#include "vv/compare.h"

namespace optrep::sim {

namespace {

constexpr std::uint32_t kNoSite = 0xffffffffu;

vv::VectorKind vector_kind(ScenarioAlgo a) {
  switch (a) {
    case ScenarioAlgo::kBrv: return vv::VectorKind::kBrv;
    case ScenarioAlgo::kCrv: return vv::VectorKind::kCrv;
    case ScenarioAlgo::kSrv: return vv::VectorKind::kSrv;
    case ScenarioAlgo::kSyncg: break;
  }
  OPTREP_CHECK_MSG(false, "scenario: not a vector algorithm");
  return vv::VectorKind::kSrv;
}

}  // namespace

ScenarioWorld::ScenarioWorld(const Config& cfg)
    : cfg_(cfg),
      mesh_(Mesh::build(cfg.mesh, cfg.sites, cfg.degree, cfg.seed)),
      churn_rng_(cfg.seed ^ 0x9d5c0f2ab54e613dULL) {
  OPTREP_CHECK_MSG(cfg_.sites >= 2, "scenario: need at least 2 sites");
  OPTREP_CHECK_MSG(cfg_.writers >= 1, "scenario: need at least 1 writer");
  OPTREP_CHECK_MSG(cfg_.algo != ScenarioAlgo::kSyncg || cfg_.writers == 1,
                   "scenario: syncg worlds are single-writer (header comment)");
  const std::uint32_t n = cfg_.sites;

  const std::uint32_t w = std::min(cfg_.writers, n);
  writer_sites_.reserve(w);
  for (std::uint32_t i = 0; i < w; ++i) {
    // i·n/w is strictly increasing for w ≤ n, so writer sites are distinct
    // and spread evenly around the mesh.
    writer_sites_.push_back(static_cast<std::uint32_t>(std::uint64_t{i} * n / w));
  }

  if (is_vv()) {
    // Vector width is bounded by the distinct writer set (pool + flash
    // headroom); reserving it up front is both the zero-alloc steady state
    // and the optimistic-read capacity contract. Every replica's columns are
    // carved from the shared per-world arena.
    const std::size_t width =
        std::min<std::size_t>(n, std::size_t{w} + cfg_.extra_writers);
    replicas_.resize(n);
    for (auto& r : replicas_) {
      r.attach_arena(&arena_);
      r.reserve(width);
    }
  } else {
    // All graphs share one genesis operation (site 0, seq 1) so any two are
    // always comparable from a common source.
    graphs_.resize(n);
    next_seq_.assign(n, 0);
    const UpdateId genesis{SiteId{0}, 1};
    for (auto& g : graphs_) g.create(genesis);
    next_seq_[0] = 1;
    total_nodes_ = 1;
  }

  cursor_.assign(n, 0);
  remaining_.assign(n, 0);
  active_.assign(n, 1);
  queued_.assign(n, 0);
  eq_.assign(n, 1);  // empty world: every replica equals the (empty) supremum
  eq_epoch_.assign(n, 0);
  eq_count_ = n;

  Rng cursor_rng(cfg_.seed ^ 0x2b7e151628aed2a6ULL);
  for (std::uint32_t s = 0; s < n; ++s) {
    const std::uint32_t deg = mesh_.degree(s);
    cursor_[s] = deg == 0 ? 0 : static_cast<std::uint32_t>(cursor_rng.below(deg));
  }
  loop_.reserve(256);
}

// ---- updates ---------------------------------------------------------------

void ScenarioWorld::local_update(std::uint32_t site) {
  OPTREP_CHECK_MSG(site < cfg_.sites, "local_update: site out of range");
  OPTREP_CHECK_MSG(active_[site] != 0, "local_update: site is offline");
  ++totals_.updates;
  if (is_vv()) {
    replicas_[site].record_update(SiteId{site});
    sup_set(site, replicas_[site].value(SiteId{site}));
  } else {
    const UpdateId id{SiteId{site}, ++next_seq_[site]};
    graphs_[site].append(id);
    ++total_nodes_;
  }
  // The supremum grew strictly: every equality flag from the previous epoch
  // is stale (false); only the updater can be equal right now.
  ++sup_epoch_;
  eq_count_ = 0;
  refresh_eq(site);
  mark_dirty(site);
}

std::uint32_t ScenarioWorld::next_writer() {
  const auto w = static_cast<std::uint32_t>(writer_sites_.size());
  for (std::uint32_t t = 0; t < w; ++t) {
    const std::uint32_t s = writer_sites_[writer_cursor_];
    writer_cursor_ = (writer_cursor_ + 1) % w;
    if (active_[s] != 0) return s;
  }
  OPTREP_CHECK_MSG(false, "next_writer: every writer site is offline");
  return 0;
}

std::uint32_t ScenarioWorld::flash_site(std::uint32_t j, std::uint32_t total) {
  OPTREP_DCHECK(total > 0 && j < total);
  const auto s = static_cast<std::uint32_t>(std::uint64_t{j} * cfg_.sites / total);
  for (std::uint32_t t = 0; t < cfg_.sites; ++t) {
    const std::uint32_t c = (s + t) % cfg_.sites;
    if (active_[c] != 0) return c;
  }
  OPTREP_CHECK_MSG(false, "flash_site: every site is offline");
  return 0;
}

// ---- gossip ----------------------------------------------------------------

void ScenarioWorld::mark_dirty(std::uint32_t s) {
  remaining_[s] = mesh_.degree(s);
  if (queued_[s] == 0) {
    queued_[s] = 1;
    dirty_.push_back(s);
  }
}

std::uint32_t ScenarioWorld::gossip_round() {
  if (dirty_.empty()) return 0;
  ++totals_.rounds;
  // Swap the pending set out and process it in ascending site order; sites
  // dirtied (or re-dirtied) during the round land in the next round's set.
  round_.clear();
  round_.swap(dirty_);
  std::sort(round_.begin(), round_.end());
  for (const std::uint32_t s : round_) queued_[s] = 0;

  std::uint32_t exchanges = 0;
  for (const std::uint32_t s : round_) {
    // A site taken offline while dirty drops its obligation; bring_online
    // re-dirties it wholesale.
    if (active_[s] == 0) continue;
    const std::uint32_t deg = mesh_.degree(s);
    if (deg == 0) continue;

    std::uint32_t nb = kNoSite;
    std::uint32_t j = 0;
    for (; j < deg; ++j) {
      const std::uint32_t cand = mesh_.neighbor(s, (cursor_[s] + j) % deg);
      if (active_[cand] != 0 && !edge_blocked(s, cand)) {
        nb = cand;
        break;
      }
    }
    if (nb == kNoSite) {
      // No reachable peer this round (churn/partition); the push debt stays.
      if (queued_[s] == 0) {
        queued_[s] = 1;
        dirty_.push_back(s);
      }
      continue;
    }
    cursor_[s] = (cursor_[s] + j + 1) % deg;

    const auto [a_changed, b_changed] = exchange(s, nb);
    ++exchanges;

    // The pair is equalized either way; a state change resets the owner's
    // debt to its full neighborhood.
    if (a_changed) remaining_[s] = deg;
    if (remaining_[s] > 0) --remaining_[s];
    if (remaining_[s] > 0 && queued_[s] == 0) {
      queued_[s] = 1;
      dirty_.push_back(s);
    }
    if (b_changed) {
      remaining_[nb] = mesh_.degree(nb);
      if (queued_[nb] == 0) {
        queued_[nb] = 1;
        dirty_.push_back(nb);
      }
    }
  }
  return exchanges;
}

std::pair<bool, bool> ScenarioWorld::exchange(std::uint32_t s, std::uint32_t nb) {
  // Every exchange opens with one COMPARE probe each way (Algorithm 1's
  // traffic: 2·log(mn) bits, two messages) — for syncg the analogous sink-id
  // probe of the §6 containment test costs the same log n + log m each way.
  ++totals_.compares;
  totals_.bits += vv::compare_cost_bits(cfg_.cost);
  totals_.msgs += 2;

  bool a_changed = false;
  bool b_changed = false;
  if (is_vv()) {
    vv::RotatingVector& a = replicas_[s];
    vv::RotatingVector& b = replicas_[nb];
    // Relation decided by the exact local oracle, not compare_fast: without
    // the §2.2 post-reconciliation increment merged vectors are not at-rest
    // (header comment). The probe above already charged COMPARE's price.
    const vv::Ordering rel = vv::compare_full(a, b);
    if (rel != vv::Ordering::kEqual) {
      vv::SyncOptions opt;
      opt.kind = vector_kind(cfg_.algo);
      opt.mode = cfg_.mode;
      opt.net = cfg_.net;
      opt.cost = cfg_.cost;
      opt.known_relation = vv::Ordering::kBefore;  // receiver ≺ sender below
      if (rel == vv::Ordering::kBefore) {
        accumulate(vv::sync_rotating(loop_, a, b, opt));
        a_changed = true;
      } else if (rel == vv::Ordering::kAfter) {
        accumulate(vv::sync_rotating(loop_, b, a, opt));
        b_changed = true;
      } else if (cfg_.algo == ScenarioAlgo::kBrv) {
        // SYNCB cannot reconcile concurrent vectors (§3.1): the pair stays
        // divergent and the exchange carried only the COMPARE probes.
        ++totals_.conflicts_held;
      } else {
        // CRV/SRV reconcile: s absorbs the join, then nb (now strictly
        // behind) fast-forwards from s.
        opt.known_relation = vv::Ordering::kConcurrent;
        accumulate(vv::sync_rotating(loop_, a, b, opt));
        opt.known_relation = vv::Ordering::kBefore;
        accumulate(vv::sync_rotating(loop_, b, a, opt));
        ++totals_.reconciliations;
        a_changed = true;
        b_changed = true;
      }
    }
  } else {
    graph::CausalGraph& a = graphs_[s];
    graph::CausalGraph& b = graphs_[nb];
    const vv::Ordering rel = a.compare(b);
    if (rel != vv::Ordering::kEqual) {
      graph::GraphSyncOptions opt;
      opt.mode = cfg_.mode;
      opt.net = cfg_.net;
      opt.cost = cfg_.cost;
      opt.ship_ops = false;  // anti-entropy metadata round
      if (rel == vv::Ordering::kBefore) {
        accumulate(graph::sync_graph(loop_, a, b, opt));
        a.set_sink(b.sink());  // dominated union: fast-forward (§6)
        a_changed = true;
      } else if (rel == vv::Ordering::kAfter) {
        accumulate(graph::sync_graph(loop_, b, a, opt));
        b.set_sink(a.sink());
        b_changed = true;
      } else {
        // Unreachable in a single-writer world (enforced at construction);
        // counted rather than CHECKed so a future multi-writer mode can
        // measure how often it would need merge operations.
        ++totals_.conflicts_held;
      }
    }
  }
  refresh_eq(s);
  refresh_eq(nb);
  return {a_changed, b_changed};
}

void ScenarioWorld::accumulate(const vv::SyncReport& r) {
  ++totals_.sessions;
  totals_.bits += r.total_bits();
  totals_.wire_bytes += r.total_bytes();
  totals_.msgs += r.msgs_fwd + r.msgs_rev;
  totals_.elems_applied += r.elems_applied;
}

void ScenarioWorld::accumulate(const graph::GraphSyncReport& r) {
  ++totals_.sessions;
  totals_.bits += r.total_bits();
  totals_.wire_bytes += r.bytes_fwd + r.bytes_rev;
  totals_.msgs += r.msgs_fwd + r.msgs_rev;
  totals_.nodes_applied += r.nodes_new;
}

// ---- disturbances ----------------------------------------------------------

void ScenarioWorld::set_partitioned(bool on) {
  if (partitioned_ == on) return;
  partitioned_ = on;
  if (on) return;
  // Heal: every active site with a cross-side edge owes pushes again, so the
  // halves' suprema flow over the re-opened boundary.
  for (std::uint32_t s = 0; s < cfg_.sites; ++s) {
    if (active_[s] == 0) continue;
    const std::uint32_t deg = mesh_.degree(s);
    for (std::uint32_t j = 0; j < deg; ++j) {
      if (side(mesh_.neighbor(s, j)) != side(s)) {
        mark_dirty(s);
        break;
      }
    }
  }
}

void ScenarioWorld::take_offline(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    if (offline_ + 1 >= cfg_.sites) break;  // keep at least one site up
    auto s = static_cast<std::uint32_t>(churn_rng_.below(cfg_.sites));
    while (active_[s] == 0) s = (s + 1) % cfg_.sites;
    active_[s] = 0;
    offline_sites_.push_back(s);
    ++offline_;
  }
}

void ScenarioWorld::bring_online() {
  for (const std::uint32_t s : offline_sites_) {
    active_[s] = 1;
    // Dirty in both roles: push what it wrote before going down, and pull
    // (via the exchange's symmetry) everything it missed.
    mark_dirty(s);
  }
  offline_sites_.clear();
  offline_ = 0;
}

// ---- convergence oracle ----------------------------------------------------

void ScenarioWorld::sup_set(std::uint32_t site, std::uint64_t value) {
  auto it = std::lower_bound(
      sup_.begin(), sup_.end(), site,
      [](const std::pair<std::uint32_t, std::uint64_t>& p, std::uint32_t s) {
        return p.first < s;
      });
  if (it != sup_.end() && it->first == site) {
    it->second = value;
  } else {
    sup_.insert(it, {site, value});
  }
}

bool ScenarioWorld::equals_sup(std::uint32_t s) const {
  if (!is_vv()) return graphs_[s].node_count() == total_nodes_;
  const vv::RotatingVector& v = replicas_[s];
  if (v.size() != sup_.size()) return false;
  for (const auto& [site, val] : sup_) {
    if (v.value(SiteId{site}) != val) return false;
  }
  return true;
}

void ScenarioWorld::refresh_eq(std::uint32_t s) {
  const bool was = eq_epoch_[s] == sup_epoch_ && eq_[s] != 0;
  const bool now = equals_sup(s);
  eq_epoch_[s] = sup_epoch_;
  eq_[s] = now ? 1 : 0;
  if (now && !was) ++eq_count_;
  if (!now && was) --eq_count_;
}

// ---- observability ---------------------------------------------------------

std::uint64_t ScenarioWorld::replica_memory_bytes() const {
  std::uint64_t total = 0;
  for (const auto& r : replicas_) total += r.memory_bytes();
  return total;
}

void ScenarioWorld::publish_metrics() {
  metrics_.counter("scenario.rounds").set(totals_.rounds);
  metrics_.counter("scenario.updates").set(totals_.updates);
  metrics_.counter("scenario.compares").set(totals_.compares);
  metrics_.counter("scenario.sessions").set(totals_.sessions);
  metrics_.counter("scenario.bits").set(totals_.bits);
  metrics_.counter("scenario.wire_bytes").set(totals_.wire_bytes);
  metrics_.counter("scenario.msgs").set(totals_.msgs);
  metrics_.counter("scenario.elems_applied").set(totals_.elems_applied);
  metrics_.counter("scenario.nodes_applied").set(totals_.nodes_applied);
  metrics_.counter("scenario.reconciliations").set(totals_.reconciliations);
  metrics_.counter("scenario.conflicts_held").set(totals_.conflicts_held);
  metrics_.gauge("scenario.dirty_sites").set(static_cast<std::int64_t>(dirty_.size()));
  metrics_.gauge("scenario.converged_replicas").set(static_cast<std::int64_t>(eq_count_));
  metrics_.gauge("scenario.offline_sites").set(static_cast<std::int64_t>(offline_));
  const vv::Arena::Stats& a = arena_.stats();
  metrics_.gauge("rt.arena.reserved_bytes").set(static_cast<std::int64_t>(a.reserved_bytes));
  metrics_.gauge("rt.arena.live_bytes").set(static_cast<std::int64_t>(a.live_bytes));
  metrics_.gauge("rt.arena.retired_bytes").set(static_cast<std::int64_t>(a.retired_bytes));
  metrics_.gauge("rt.arena.high_water_bytes")
      .set(static_cast<std::int64_t>(a.high_water_bytes));
  metrics_.gauge("rt.arena.slabs").set(static_cast<std::int64_t>(a.slabs));
}

void ScenarioWorld::publish_memory_metrics() {
  metrics_.gauge("scenario.replica_bytes")
      .set(static_cast<std::int64_t>(replica_memory_bytes()));
  metrics_.gauge("scenario.mesh_bytes").set(static_cast<std::int64_t>(mesh_.memory_bytes()));
}

}  // namespace optrep::sim
