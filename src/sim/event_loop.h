// A minimal discrete-event simulator core.
//
// All protocol executions in optrep run on this loop: links schedule message
// deliveries, and protocol peers schedule their own continuations (e.g. "send
// the next element when the link frees"). Simulated time is in seconds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "obs/prof.h"  // header-only: OPTREP_SPAN adds no link dependency

namespace optrep::sim {

using Time = double;

class EventLoop {
 public:
  using EventId = std::uint64_t;

  Time now() const { return now_; }

  // Schedule fn at absolute time t (>= now). Events at equal times run in
  // scheduling order, which keeps executions deterministic.
  EventId schedule(Time t, std::function<void()> fn) {
    OPTREP_CHECK_MSG(t >= now_, "cannot schedule into the past");
    const EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
    return id;
  }

  EventId schedule_after(Time delay, std::function<void()> fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  void cancel(EventId id) {
    cancelled_.insert(id);
    ++cancel_requests_;
  }

  // Run one pending event; returns false when the queue is drained.
  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) continue;
      now_ = ev.at;
      ++executed_;
      {
        OPTREP_SPAN("sim.dispatch");
        ev.fn();
      }
      return true;
    }
    return false;
  }

  // Run to quiescence. Returns the time of the last executed event.
  Time run() {
    std::uint64_t executed_this_run = 0;
    while (step()) {
      if (++executed_this_run >= kMaxEvents) abort_runaway(executed_this_run);
    }
    return now_;
  }

  bool idle() const { return queue_.empty(); }

  // Observability: lifetime counters and scheduling-depth gauge (published
  // into metric registries by the systems that own a loop; see src/obs/).
  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t cancelled_events() const { return cancel_requests_; }
  std::size_t queue_depth() const { return queue_.size(); }  // incl. tombstones
  std::size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  static constexpr std::uint64_t kMaxEvents = 500'000'000;

  [[noreturn]] void abort_runaway(std::uint64_t executed_this_run) const {
    char msg[192];
    std::snprintf(msg, sizeof msg,
                  "event loop runaway (protocol livelock?): %llu events this run "
                  "(%llu lifetime), queue depth %zu (max %zu), %llu cancel requests, "
                  "now=%.9g",
                  static_cast<unsigned long long>(executed_this_run),
                  static_cast<unsigned long long>(executed_), queue_.size(),
                  max_queue_depth_, static_cast<unsigned long long>(cancel_requests_),
                  now_);
    OPTREP_CHECK_MSG(false, msg);
  }

  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Time now_{0};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::uint64_t cancel_requests_{0};
  std::size_t max_queue_depth_{0};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace optrep::sim
