// A minimal discrete-event simulator core.
//
// All protocol executions in optrep run on this loop: links schedule message
// deliveries, and protocol peers schedule their own continuations (e.g. "send
// the next element when the link frees"). Simulated time is in seconds.
//
// The event queue is allocation-free in steady state: event closures are
// FixedFunction (inline storage, no heap — a capture that outgrows the slot
// is a compile error, not a silent allocation), and the heap is a plain
// vector manipulated with std::push_heap/pop_heap so dispatch moves events
// out instead of copying them. Once the vector has grown to the execution's
// peak depth (or was reserve()d there), scheduling allocates nothing — which
// is what keeps the per-message path of the sync protocols off the allocator.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <vector>

#include "common/check.h"
#include "common/fixed_function.h"
#include "obs/prof.h"  // header-only: OPTREP_SPAN adds no link dependency

namespace optrep::sim {

using Time = double;

class EventLoop {
 public:
  using EventId = std::uint64_t;
  // Inline event storage: sized for the largest scheduled closure (a link
  // delivery capturing a handler pointer plus a by-value GraphMsg, ~88 bytes).
  using EventFn = FixedFunction<void(), 96>;

  Time now() const { return now_; }

  // Schedule fn at absolute time t (>= now). Events at equal times run in
  // scheduling order, which keeps executions deterministic.
  EventId schedule(Time t, EventFn fn) {
    OPTREP_CHECK_MSG(t >= now_, "cannot schedule into the past");
    const EventId id = next_id_++;
    queue_.push_back(Event{t, id, std::move(fn)});
    std::push_heap(queue_.begin(), queue_.end(), Later{});
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
    return id;
  }

  EventId schedule_after(Time delay, EventFn fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  // Time of the earliest queued event, or +inf when the queue is empty. May
  // report a cancelled (tombstoned) event's time — callers using this as a
  // delivery horizon (sim::FrameLink) only become more conservative for it.
  Time next_event_time() const {
    if (queue_.empty()) return std::numeric_limits<Time>::infinity();
    return queue_.front().at;
  }

  // Advance the clock inside a dispatch without executing an event. Only legal
  // up to the next queued event: a handler that batches several logical
  // actions in one dispatch (frame delivery) uses this to give each action its
  // exact per-message timestamp while the queue stays causally consistent.
  void advance_to(Time t) {
    OPTREP_CHECK_MSG(t >= now_, "cannot advance into the past");
    OPTREP_CHECK_MSG(t <= next_event_time(), "cannot advance past a queued event");
    now_ = t;
  }

  // Pre-size the event queue; with capacity for the peak depth, scheduling
  // never reallocates.
  void reserve(std::size_t events) { queue_.reserve(events); }

  // Periodic time-advance sampling hook (obs::Timeline): fn(ctx, t) fires
  // once per `every`-second boundary the clock crosses, with the boundary
  // time, *before* the event that crossed it dispatches — a sample at
  // boundary T reflects exactly the state left by events strictly before T.
  // Plain function pointer + context, not std::function: the loop stays
  // header-only with no obs dependency, and the disabled-path cost in step()
  // is one double compare against +inf. The callback must only read state —
  // scheduling or cancelling from inside it would change the execution it is
  // meant to observe.
  using SamplerFn = void (*)(void* ctx, Time t);
  void set_time_sampler(Time every, void* ctx, SamplerFn fn) {
    OPTREP_CHECK_MSG(every > 0 && fn != nullptr, "sampler needs a period and a fn");
    sampler_every_ = every;
    sampler_ctx_ = ctx;
    sampler_ = fn;
    sampler_next_ = now_ + every;
  }
  void clear_time_sampler() {
    sampler_ = nullptr;
    sampler_next_ = std::numeric_limits<Time>::infinity();
  }

  // Cancelled ids live in a small vector, not a hash set: a live execution has
  // at most a handful pending (typically one HALT-cancelled send), and vector
  // capacity is retained across sessions, so repeated cancels on a reused loop
  // never touch the allocator.
  void cancel(EventId id) {
    cancelled_.push_back(id);
    ++cancel_requests_;
  }

  // Run one pending event; returns false when the queue is drained.
  bool step() {
    while (!queue_.empty()) {
      std::pop_heap(queue_.begin(), queue_.end(), Later{});
      Event ev = std::move(queue_.back());
      queue_.pop_back();
      if (!cancelled_.empty() && take_cancelled(ev.id)) continue;
      if (ev.at >= sampler_next_) run_sampler(ev.at);
      now_ = ev.at;
      ++executed_;
      {
        OPTREP_SPAN("sim.dispatch");
        ev.fn();
      }
      return true;
    }
    return false;
  }

  // Run to quiescence. Returns the time of the last executed event.
  Time run() {
    std::uint64_t executed_this_run = 0;
    while (step()) {
      if (++executed_this_run >= kMaxEvents) abort_runaway(executed_this_run);
    }
    return now_;
  }

  bool idle() const { return queue_.empty(); }

  // Observability: lifetime counters and scheduling-depth gauge (published
  // into metric registries by the systems that own a loop; see src/obs/).
  std::uint64_t executed_events() const { return executed_; }
  std::uint64_t cancelled_events() const { return cancel_requests_; }
  std::size_t queue_depth() const { return queue_.size(); }  // incl. tombstones
  std::size_t max_queue_depth() const { return max_queue_depth_; }

 private:
  static constexpr std::uint64_t kMaxEvents = 500'000'000;

  [[noreturn]] void abort_runaway(std::uint64_t executed_this_run) const {
    char msg[192];
    std::snprintf(msg, sizeof msg,
                  "event loop runaway (protocol livelock?): %llu events this run "
                  "(%llu lifetime), queue depth %zu (max %zu), %llu cancel requests, "
                  "now=%.9g",
                  static_cast<unsigned long long>(executed_this_run),
                  static_cast<unsigned long long>(executed_), queue_.size(),
                  max_queue_depth_, static_cast<unsigned long long>(cancel_requests_),
                  now_);
    OPTREP_CHECK_MSG(false, msg);
  }

  // Fire the sampler for every boundary in (now_, t], advancing the clock to
  // each boundary so the callback's reads see a consistent timestamp.
  void run_sampler(Time t) {
    while (sampler_next_ <= t) {
      const Time at = sampler_next_;
      sampler_next_ += sampler_every_;
      now_ = at;
      sampler_(sampler_ctx_, at);
    }
  }

  bool take_cancelled(EventId id) {
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), id);
    if (it == cancelled_.end()) return false;
    *it = cancelled_.back();
    cancelled_.pop_back();
    return true;
  }

  struct Event {
    Time at;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Time now_{0};
  Time sampler_every_{0};
  Time sampler_next_{std::numeric_limits<Time>::infinity()};
  void* sampler_ctx_{nullptr};
  SamplerFn sampler_{nullptr};
  EventId next_id_{1};
  std::uint64_t executed_{0};
  std::uint64_t cancel_requests_{0};
  std::size_t max_queue_depth_{0};
  std::vector<Event> queue_;  // binary max-heap under Later (min-time at front)
  std::vector<EventId> cancelled_;
};

}  // namespace optrep::sim
