// A minimal discrete-event simulator core.
//
// All protocol executions in optrep run on this loop: links schedule message
// deliveries, and protocol peers schedule their own continuations (e.g. "send
// the next element when the link frees"). Simulated time is in seconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/check.h"

namespace optrep::sim {

using Time = double;

class EventLoop {
 public:
  using EventId = std::uint64_t;

  Time now() const { return now_; }

  // Schedule fn at absolute time t (>= now). Events at equal times run in
  // scheduling order, which keeps executions deterministic.
  EventId schedule(Time t, std::function<void()> fn) {
    OPTREP_CHECK_MSG(t >= now_, "cannot schedule into the past");
    const EventId id = next_id_++;
    queue_.push(Event{t, id, std::move(fn)});
    return id;
  }

  EventId schedule_after(Time delay, std::function<void()> fn) {
    return schedule(now_ + delay, std::move(fn));
  }

  void cancel(EventId id) { cancelled_.insert(id); }

  // Run one pending event; returns false when the queue is drained.
  bool step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      if (cancelled_.erase(ev.id) > 0) continue;
      now_ = ev.at;
      ev.fn();
      return true;
    }
    return false;
  }

  // Run to quiescence. Returns the time of the last executed event.
  Time run() {
    std::uint64_t executed = 0;
    while (step()) {
      ++executed;
      OPTREP_CHECK_MSG(executed < kMaxEvents, "event loop runaway (protocol livelock?)");
    }
    return now_;
  }

  bool idle() const { return queue_.empty(); }

 private:
  static constexpr std::uint64_t kMaxEvents = 500'000'000;

  struct Event {
    Time at;
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;  // FIFO among simultaneous events
    }
  };

  Time now_{0};
  EventId next_id_{1};
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace optrep::sim
