// Frame-batched transport over the Link timing model.
//
// A FrameLink coalesces back-to-back same-direction messages into wire
// frames: one event-loop dispatch delivers (and one frame-sizer call encodes)
// a whole run of messages, instead of one each. Frames close on
//   - a flush-after control message (HALT/SKIP/SKIPPED/ACK — see the
//     flush_after predicate the session layer installs),
//   - a direction turn (the reverse link transmitting), or
//   - the NetConfig::frame_budget message cap.
//
// Timing stays *per message* and exactly matches sim::Link: each message
// starts when the link frees, occupies it for model_bits/bandwidth seconds,
// and arrives latency after its last bit. Coalescing only merges the event
// *dispatches*: a delivery event walks every queued message whose arrival
// precedes the loop's next event, advancing the clock to each message's exact
// arrival (EventLoop::advance_to). At equal times queued deliveries run
// before other events, which reproduces the unframed schedule order (those
// deliveries were scheduled at send time, i.e. with smaller event ids).
//
// Speculation and revocation. A pipelined sender may hand the link a burst of
// messages marked `revocable` in one dispatch instead of pumping one per
// link-free event. The §3.1 semantics — a HALT cancels elements not yet
// transmitted, so overshoot is β = bandwidth·rtt — are preserved by
// cancel_tail(): when the reverse control arrives, it revokes exactly the
// tail whose transmission start lies strictly in the future (a message whose
// first bit leaves at the control's arrival instant is already committed,
// matching the unframed pump's tie behavior), rolls back link-free time and
// the byte/bit accounting, and hands the revoked messages back to the sender
// so it can rewind its cursor. Reactive messages (acks, SKIPPED) are sent
// non-revocable: the unframed model commits them at hand-off.
//
// Accounting: LinkStats::{messages, model_bits, wire_bytes} stay the exact
// per-message figures (§3.3 accounting is untouched by framing — asserted by
// tests). frames/framed_wire_bytes describe the batched realistic encoding:
// the installed FrameSizer prices each closed frame over the messages
// actually transmitted. With frame_budget == 0 the link degrades to the
// legacy per-message behavior — same events, same taps, every message its
// own frame.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <utility>
#include <vector>

#include "common/check.h"
#include "sim/event_loop.h"
#include "sim/link.h"

namespace optrep::sim {

template <class Msg>
class FrameLink {
 public:
  using Handler = std::function<void(const Msg&)>;
  using Tap = std::function<void(Time send_time, const Msg&, std::uint64_t model_bits)>;
  // Observes each message at its delivery instant (arrival time), immediately
  // before the receiver handler — and therefore before any interposed fault
  // injector passes its verdict. Gives causal tracing its send → receive
  // edge without wrapping the delivery handler (which would heap-allocate a
  // std::function per session).
  using DeliveryTap = std::function<void(Time arrive_time, const Msg&)>;
  // Realistic size in bytes of one wire frame carrying `msgs` in order.
  using FrameSizer = std::function<std::uint64_t(const std::vector<Msg>&)>;
  // Size of a single-message frame — the frame_budget == 0 path prices each
  // message without touching the frame scratch buffer (keeps the legacy
  // session path allocation-free).
  using MsgSizer = std::function<std::uint64_t(const Msg&)>;
  // True for messages that force a frame flush immediately after themselves.
  using FlushAfter = std::function<bool(const Msg&)>;

  FrameLink(EventLoop* loop, NetConfig cfg) : loop_(loop), cfg_(cfg) {
    OPTREP_CHECK(loop != nullptr);
  }

  // Scheduled delivery closures capture `this`: immovable, like Link.
  FrameLink(const FrameLink&) = delete;
  FrameLink& operator=(const FrameLink&) = delete;
  FrameLink(FrameLink&&) = delete;
  FrameLink& operator=(FrameLink&&) = delete;

  void set_receiver(Handler h) { deliver_ = std::move(h); }
  void set_tap(Tap t) { tap_ = std::move(t); }
  void set_delivery_tap(DeliveryTap t) { recv_tap_ = std::move(t); }
  void set_frame_sizer(FrameSizer s) { sizer_ = std::move(s); }
  void set_msg_sizer(MsgSizer s) { msg_sizer_ = std::move(s); }
  void set_flush_after(FlushAfter f) { flush_after_ = std::move(f); }
  // The opposite-direction link; our transmissions close its open frame.
  void set_reverse(FrameLink* peer) { reverse_ = peer; }

  // Queue msg for transmission; returns the time the link frees. `revocable`
  // marks a speculative send that a later cancel_tail may take back.
  Time send(const Msg& msg, std::uint64_t model_bits, std::uint64_t wire_bytes,
            bool revocable = false) {
    OPTREP_CHECK_MSG(deliver_ != nullptr, "link has no receiver");
    if (reverse_ != nullptr) reverse_->close_frame();  // direction turn
    const Time start = std::max(loop_->now(), free_at_);
    const Time finish = start + transmit_seconds(model_bits);
    const Time arrive = finish + cfg_.latency_s;
    free_at_ = finish;
    stats_.messages += 1;
    stats_.model_bits += model_bits;
    stats_.wire_bytes += wire_bytes;
    if (!framed()) {
      // Legacy path: per-message delivery event and hand-off tap, identical
      // to sim::Link; each message is priced as its own frame.
      if (tap_) tap_(loop_->now(), msg, model_bits);
      stats_.frames += 1;
      stats_.framed_wire_bytes += msg_sizer_ ? msg_sizer_(msg) : wire_bytes;
      loop_->schedule(arrive, [this, msg] {
        if (recv_tap_) recv_tap_(loop_->now(), msg);
        deliver_(msg);
      });
      return free_at_;
    }
    if (tap_ && !revocable) tap_(loop_->now(), msg, model_bits);
    pending_.push_back(Pending{msg, model_bits, wire_bytes, start, finish,
                               arrive, revocable, false});
    ++open_count_;
    if ((flush_after_ && flush_after_(msg)) || open_count_ >= cfg_.frame_budget) {
      pending_.back().end_of_frame = true;
      open_count_ = 0;
    }
    if (!delivery_scheduled_) schedule_delivery();
    return free_at_;
  }

  // Close the currently-open frame, if any: subsequent sends start a new one.
  // Called on direction turns and at end of session; if every message of the
  // open frame has already been delivered, the frame is priced immediately.
  void close_frame() {
    open_count_ = 0;
    if (!pending_empty()) {
      pending_.back().end_of_frame = true;
    } else if (!frame_scratch_.empty()) {
      account_frame();
    }
  }

  // Iterate the messages cancel_tail would revoke right now (newest first)
  // without revoking them — a sender uses this to reconstruct the committed,
  // actually-transmitted protocol state before deciding on a revocation.
  template <class Fn>
  void peek_tail(Fn&& fn) const {
    const Time now = loop_->now();
    for (std::size_t i = pending_.size(); i > head_; --i) {
      const Pending& p = pending_[i - 1];
      if (!p.revocable || p.start <= now) break;
      fn(p.msg);
    }
  }

  // Revoke the speculative not-yet-transmitting tail of the queue: pops
  // messages from the back while they are revocable and their transmission
  // start lies strictly after now. Calls on_revoked(msg) per revoked message,
  // newest first (so a sender can rewind its cursor step by step). Returns
  // the number revoked. Undoes the per-message stats and rolls the link-free
  // time back to the last surviving transmission.
  template <class Fn>
  std::size_t cancel_tail(Fn&& on_revoked) {
    const Time now = loop_->now();
    std::size_t revoked = 0;
    while (!pending_empty() && pending_.back().revocable &&
           pending_.back().start > now) {
      Pending& p = pending_.back();
      stats_.messages -= 1;
      stats_.model_bits -= p.model_bits;
      stats_.wire_bytes -= p.wire_bytes;
      on_revoked(p.msg);
      pending_.pop_back();
      ++revoked;
    }
    if (revoked == 0) return 0;
    free_at_ = pending_empty() ? last_delivered_finish_ : pending_.back().finish;
    if (pending_empty()) {
      pending_.clear();
      head_ = 0;
      if (delivery_scheduled_) {
        loop_->cancel(delivery_event_);
        delivery_scheduled_ = false;
      }
    }
    close_frame();
    return revoked;
  }

  bool framed() const { return cfg_.frame_budget > 0; }
  Time free_at() const { return free_at_; }
  const LinkStats& stats() const { return stats_; }
  const NetConfig& config() const { return cfg_; }
  EventLoop* loop() const { return loop_; }

 private:
  struct Pending {
    Msg msg;
    std::uint64_t model_bits;
    std::uint64_t wire_bytes;
    Time start;    // transmission start
    Time finish;   // transmission end (link frees)
    Time arrive;   // delivery time
    bool revocable;
    bool end_of_frame;
  };

  Time transmit_seconds(std::uint64_t bits) const {
    if (cfg_.bandwidth_bits_per_s == std::numeric_limits<double>::infinity()) return 0;
    OPTREP_CHECK(cfg_.bandwidth_bits_per_s > 0);
    return static_cast<double>(bits) / cfg_.bandwidth_bits_per_s;
  }

  // pending_ is a vector drained from head_: pop_front is an index bump, and
  // the storage resets (and is reused) every time the queue runs dry, so the
  // steady-state send path never touches the allocator.
  bool pending_empty() const { return head_ == pending_.size(); }

  void schedule_delivery() {
    delivery_scheduled_ = true;
    delivery_event_ =
        loop_->schedule(pending_[head_].arrive, [this] { on_delivery(); });
  }

  void on_delivery() {
    delivery_scheduled_ = false;
    while (!pending_empty()) {
      // Deliver every message arriving no later than the loop's next event
      // (ties resolve deliveries-first — the unframed schedule order), then
      // park one event at the next arrival.
      if (pending_[head_].arrive > loop_->next_event_time()) {
        schedule_delivery();
        return;
      }
      Pending p = std::move(pending_[head_]);
      ++head_;
      if (pending_empty()) {
        pending_.clear();
        head_ = 0;
      }
      loop_->advance_to(p.arrive);
      last_delivered_finish_ = p.finish;
      // Speculative messages are tapped at delivery commit (revoked ones must
      // not appear in transcripts), stamped with their transmission start —
      // the instant the unframed pump would have handed them to the link.
      if (tap_ && p.revocable) tap_(p.start, p.msg, p.model_bits);
      if (recv_tap_) recv_tap_(p.arrive, p.msg);
      frame_scratch_.push_back(p.msg);
      frame_bytes_sum_ += p.wire_bytes;
      if (p.end_of_frame) account_frame();
      deliver_(p.msg);
    }
  }

  void account_frame() {
    stats_.frames += 1;
    stats_.framed_wire_bytes += sizer_ ? sizer_(frame_scratch_) : frame_bytes_sum_;
    frame_scratch_.clear();
    frame_bytes_sum_ = 0;
  }

  EventLoop* loop_;
  NetConfig cfg_;
  Time free_at_{0};
  Time last_delivered_finish_{0};
  LinkStats stats_;
  Handler deliver_;
  Tap tap_;
  DeliveryTap recv_tap_;
  FrameSizer sizer_;
  MsgSizer msg_sizer_;
  FlushAfter flush_after_;
  FrameLink* reverse_{nullptr};

  std::vector<Pending> pending_;
  std::size_t head_{0};
  std::uint32_t open_count_{0};
  bool delivery_scheduled_{false};
  EventLoop::EventId delivery_event_{0};
  std::vector<Msg> frame_scratch_;       // delivered messages of the open frame
  std::uint64_t frame_bytes_sum_{0};     // their unframed bytes (sizer fallback)
};

// A bidirectional framed channel: the two directions are cross-linked so
// that transmitting one way closes the open frame of the other (a direction
// turn flushes).
template <class Msg>
class FrameDuplex {
 public:
  FrameDuplex(EventLoop* loop, NetConfig cfg) : a_to_b_(loop, cfg), b_to_a_(loop, cfg) {
    a_to_b_.set_reverse(&b_to_a_);
    b_to_a_.set_reverse(&a_to_b_);
  }

  FrameLink<Msg>& a_to_b() { return a_to_b_; }
  FrameLink<Msg>& b_to_a() { return b_to_a_; }

 private:
  FrameLink<Msg> a_to_b_;
  FrameLink<Msg> b_to_a_;
};

}  // namespace optrep::sim
