// Wall-clock profiling spans: RAII timers, fixed ring storage, Perfetto
// (Chrome-trace) JSON export.
//
// A Span measures one scoped region on the steady clock and, on destruction,
// records a fixed-size SpanRecord — name, start, duration, thread id, nesting
// depth — into the installed Profiler. Like the other obs instruments, the
// hot path performs no heap allocation: the ring is sized once at
// construction, the clock reads are integer arithmetic, and the optional
// metrics sink caches histogram references keyed by the span-name pointer
// (span names must be string literals or otherwise outlive the profiler).
// When no profiler is installed, a Span is two pointer reads and no clock
// access, so instrumented code paths stay cheap in uninstrumented runs.
//
// The whole hot path is header-only on purpose: sim/event_loop.h (an
// INTERFACE library that links only optrep_common) instruments its dispatch
// loop with OPTREP_SPAN, so nothing here may require linking optrep_obs
// except the exporter, which lives in prof.cc.
//
// Exported profiles use the Chrome-trace / Perfetto event format (schema tag
// "optrep.profile/v1", see docs/OBSERVABILITY.md) and load directly in
// chrome://tracing or ui.perfetto.dev. Note: wall-clock times are inherently
// non-deterministic; installing a metrics sink adds "<name>.wall_ns"
// histograms to the registry, which makes *that* registry's export
// run-dependent (the determinism contract covers model-derived metrics only).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.h"
#include "obs/metrics.h"

namespace optrep::prof {

struct SpanRecord {
  const char* name{nullptr};  // not owned; must outlive the profiler
  std::uint64_t start_ns{0};  // relative to the profiler's epoch
  std::uint64_t dur_ns{0};
  std::uint32_t tid{0};    // dense per-process thread index, not an OS id
  std::uint32_t depth{0};  // nesting depth within the recording thread
};

// Dense thread index: 0 for the first thread that records, 1 for the next…
// Stable for the thread's lifetime; used as "tid" in exported profiles.
inline std::uint32_t thread_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread span nesting depth (incremented by Span construction).
inline std::uint32_t& span_depth() {
  thread_local std::uint32_t depth = 0;
  return depth;
}

class Profiler {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 16;

  explicit Profiler(std::size_t capacity = kDefaultCapacity)
      : epoch_(std::chrono::steady_clock::now()), buf_(capacity) {
    OPTREP_CHECK_MSG(capacity > 0, "profiler capacity must be positive");
  }
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Nanoseconds on the steady clock since this profiler was constructed.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now() - epoch_)
                                          .count());
  }

  // Route per-span durations into `reg` as histograms named "<name>.wall_ns"
  // (log-scale, same instrument the protocol metrics use). The registry must
  // outlive the profiler. Pass nullptr to detach.
  void set_sink(obs::Registry* reg) {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = reg;
    sink_cache_.clear();
  }

  // Store one closed span. No allocation once a span name has been seen:
  // ring slots are preallocated and the sink cache is keyed by the name
  // pointer (names are literals), so steady-state recording is a mutex, an
  // array store, and a histogram bump.
  void record_closed(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
                     std::uint32_t tid, std::uint32_t depth) {
    std::lock_guard<std::mutex> lock(mu_);
    push_locked({name, start_ns, dur_ns, tid, depth});
  }

  // Fold another profiler's retained spans into this one (shard merge at a
  // parallel join). Span timestamps are rebased from the shard's epoch onto
  // this profiler's epoch, so merged profiles stay on one timeline. Drops in
  // the shard carry over; drops caused by this ring overflowing are counted
  // here as usual.
  void absorb(const Profiler& o) {
    OPTREP_CHECK(&o != this);
    std::scoped_lock lock(mu_, o.mu_);
    const auto delta = std::chrono::duration_cast<std::chrono::nanoseconds>(o.epoch_ - epoch_);
    for (std::size_t i = 0; i < o.size_; ++i) {
      SpanRecord rec = o.buf_[(o.head_ + i) % o.buf_.size()];
      rec.start_ns = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(rec.start_ns) + delta.count());
      push_locked(rec);
    }
    total_ += o.total_ - o.size_;  // spans the shard recorded but no longer retains
    dropped_ += o.dropped_;
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }  // retained spans
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return dropped_; }

  // i-th oldest retained span, i ∈ [0, size()).
  const SpanRecord& span(std::size_t i) const {
    OPTREP_DCHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    head_ = size_ = 0;
    total_ = dropped_ = 0;
  }

 private:
  // Requires mu_ held.
  void push_locked(const SpanRecord& rec) {
    ++total_;
    if (size_ < buf_.size()) {
      buf_[(head_ + size_) % buf_.size()] = rec;
      ++size_;
    } else {
      buf_[head_] = rec;
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
    }
    if (sink_ != nullptr) {
      auto it = sink_cache_.find(rec.name);
      if (it == sink_cache_.end()) {
        obs::Histogram& h = sink_->histogram(std::string(rec.name) + ".wall_ns");
        it = sink_cache_.emplace(rec.name, &h).first;
      }
      it->second->record(rec.dur_ns);
    }
  }

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> buf_;  // sized once; never reallocated
  std::size_t head_{0};
  std::size_t size_{0};
  std::uint64_t total_{0};
  std::uint64_t dropped_{0};
  obs::Registry* sink_{nullptr};
  // Name-pointer → histogram cache: heterogeneous-free lookup, allocates only
  // on the first record of each distinct span name.
  std::map<const char*, obs::Histogram*> sink_cache_;
};

// Process-wide profiler used by OPTREP_SPAN. Install for the duration of a
// profiled run (e.g. optrep_cli --profile-out); nullptr disables recording.
inline std::atomic<Profiler*>& global_profiler_slot() {
  static std::atomic<Profiler*> slot{nullptr};
  return slot;
}
inline void set_global_profiler(Profiler* p) {
  global_profiler_slot().store(p, std::memory_order_release);
}
inline Profiler* global_profiler() {
  return global_profiler_slot().load(std::memory_order_acquire);
}

// RAII span: times the enclosing scope and records on destruction. With no
// profiler installed the constructor is a single atomic load.
class Span {
 public:
  explicit Span(const char* name) : Span(global_profiler(), name) {}
  Span(Profiler* p, const char* name) : p_(p), name_(name) {
    if (p_ == nullptr) return;
    depth_ = span_depth()++;
    start_ns_ = p_->now_ns();
  }
  ~Span() {
    if (p_ == nullptr) return;
    --span_depth();
    const std::uint64_t end = p_->now_ns();
    p_->record_closed(name_, start_ns_, end - start_ns_, thread_index(), depth_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Profiler* p_;
  const char* name_;
  std::uint64_t start_ns_{0};
  std::uint32_t depth_{0};
};

#define OPTREP_PROF_CONCAT2(a, b) a##b
#define OPTREP_PROF_CONCAT(a, b) OPTREP_PROF_CONCAT2(a, b)
// Time the enclosing scope under `name` (a string literal) on the global
// profiler: OPTREP_SPAN("vv.syncs");
#define OPTREP_SPAN(name) \
  ::optrep::prof::Span OPTREP_PROF_CONCAT(optrep_span_, __LINE__)(name)

// Chrome-trace / Perfetto JSON ("X" complete events, µs timestamps; schema
// tag "optrep.profile/v1" in otherData). Defined in prof.cc — the only
// non-header symbol in this module, so only exporters link optrep_obs.
std::string profile_to_json(const Profiler& p);

}  // namespace optrep::prof
