#include "obs/report_diff.h"

#include <cmath>
#include <cstdio>

#include "obs/export.h"

namespace optrep::obs {

std::vector<GateRule> default_gate_rules() {
  return {
      {"wall_ns", true},     // profiling spans: more wall time is a regression
      {"bits", true},        // model-bit traffic (covers *_bits, bits_fwd, …)
      {"bytes", true},       // wire-byte traffic (incl. framed_wire_bytes)
      {"events", true},      // event-loop dispatches (events_framed/_unframed)
      {"wire", true},        // any other wire-path figure (codec sizes)
      {"frames", true},      // more frames = less coalescing for the same run
      {"gamma", true},       // observed γ (segments the receiver paid for)
      {"redundant", true},   // |Γ| elements / redundant graph nodes
      {"probe", true},       // flat-index probe totals/max: longer chains are bad
      {"straggler", true},
      {"dropped", true},     // ring truncation must not silently grow
      {"timeline", true},    // sampling overhead (timeline_off_allocs must stay 0)
      {"causal", true},      // tracing overhead (causal_*_allocs must stay 0)
      {"violations", true},  // Table 2 bound violations
      {"retries", true},     // recovery retries per fault budget must not grow
      {"failures", true},    // exhausted retry budgets (sync_failures)
      // Histogram tail latency: p999 growth is a regression even when the
      // histogram's name matches no traffic rule above (duration/latency
      // histograms). Traffic-named histograms (".session_bits.p999") are
      // already caught by the earlier rules with the same direction.
      {"p999", true},
      // Serving path (bench_serve): aborted sessions and decode errors on
      // the deterministic single-client rows must stay at zero, and the SLO
      // booleans (throughput_ok / scaling_ok) must not flip to 0.
      {"aborted", true},
      {"decode_errors", true},
      // Scenario worlds (bench_scenario): taking longer to re-converge is a
      // regression, and the converged flag must never flip to 0. (The
      // substrings are disjoint: "converged" has no "convergence" inside.)
      {"convergence", true},
      {"converged", false},
      {"within", false},     // within_table2_bound booleans
      {"consistent", false},
      {"throughput_ok", false},
      {"scaling_ok", false},
  };
}

namespace {

const GateRule* match_rule(const std::vector<GateRule>& rules, const std::string& path) {
  for (const auto& r : rules) {
    if (path.find(r.substring) != std::string::npos) return &r;
  }
  return nullptr;
}

bool is_regression(const GateRule& rule, double base, double cur, double threshold) {
  if (rule.increase_is_bad) {
    if (base == 0) return cur > 0;
    return cur > base * (1.0 + threshold);
  }
  if (base == 0) return false;  // can't get worse than nothing
  return cur < base * (1.0 - threshold);
}

void fmt_num(std::string* out, double v) {
  char buf[64];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.6g", v);
  }
  *out += buf;
}

void fmt_ratio(std::string* out, const MetricDelta& d) {
  if (d.base == 0) {
    *out += d.cur == 0 ? "=" : "new";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.2f%%", (d.cur / d.base - 1.0) * 100.0);
  *out += buf;
}

}  // namespace

std::size_t DocDiff::regressions() const {
  std::size_t n = 0;
  for (const auto& d : deltas) n += d.regressed ? 1 : 0;
  return n;
}

std::size_t DocDiff::changes() const {
  std::size_t n = 0;
  for (const auto& d : deltas) n += d.changed() ? 1 : 0;
  return n;
}

DocDiff diff_docs(std::string name, const FlatDoc& base, const FlatDoc& cur,
                  const DiffOptions& opt) {
  DocDiff out;
  out.name = std::move(name);
  for (const auto& [path, bval] : base.numbers) {
    const auto it = cur.numbers.find(path);
    if (it == cur.numbers.end()) {
      out.only_base.push_back(path);
      continue;
    }
    MetricDelta d;
    d.path = path;
    d.base = bval;
    d.cur = it->second;
    if (const GateRule* rule = match_rule(opt.rules, path)) {
      d.gated = true;
      d.regressed = is_regression(*rule, d.base, d.cur, opt.threshold);
    }
    out.deltas.push_back(std::move(d));
  }
  for (const auto& [path, _] : cur.numbers) {
    if (base.numbers.find(path) == base.numbers.end()) out.only_cur.push_back(path);
  }
  for (const auto& [path, bval] : base.strings) {
    const auto it = cur.strings.find(path);
    if (it == cur.strings.end()) {
      out.only_base.push_back(path);
    } else if (it->second != bval) {
      out.string_mismatches.push_back(path + ": '" + bval + "' -> '" + it->second + "'");
    }
  }
  for (const auto& [path, _] : cur.strings) {
    if (base.strings.find(path) == base.strings.end()) out.only_cur.push_back(path);
  }
  return out;
}

bool gate_failed(const std::vector<DocDiff>& diffs, const DiffOptions& opt) {
  for (const auto& doc : diffs) {
    if (doc.regressions() > 0) return true;
    if (opt.strict &&
        (!doc.only_base.empty() || !doc.only_cur.empty() || !doc.string_mismatches.empty())) {
      return true;
    }
  }
  return false;
}

std::string diff_to_markdown(const std::vector<DocDiff>& diffs, const DiffOptions& opt) {
  std::string out = "# Performance comparison\n\n";
  {
    char buf[96];
    std::size_t regressions = 0, changes = 0;
    for (const auto& d : diffs) {
      regressions += d.regressions();
      changes += d.changes();
    }
    std::snprintf(buf, sizeof buf,
                  "Threshold: %.4g%% · documents: %zu · changed metrics: %zu · "
                  "regressions: %zu\n\n",
                  opt.threshold * 100.0, diffs.size(), changes, regressions);
    out += buf;
  }
  for (const auto& doc : diffs) {
    out += "## " + doc.name + "\n\n";
    std::size_t unchanged = 0;
    bool any_rows = false;
    for (const auto& d : doc.deltas) {
      if (!d.changed() && !d.regressed) {
        ++unchanged;
        continue;
      }
      if (!any_rows) {
        out += "| metric | baseline | current | delta | status |\n";
        out += "|---|---:|---:|---:|---|\n";
        any_rows = true;
      }
      out += "| `" + d.path + "` | ";
      fmt_num(&out, d.base);
      out += " | ";
      fmt_num(&out, d.cur);
      out += " | ";
      fmt_ratio(&out, d);
      out += " | ";
      out += d.regressed ? "**REGRESSED**" : (d.gated ? "ok" : "info");
      out += " |\n";
    }
    if (any_rows) out += "\n";
    char buf[96];
    std::snprintf(buf, sizeof buf, "%zu metric(s) unchanged.\n", unchanged);
    out += buf;
    for (const auto& p : doc.only_base) out += "- missing from current: `" + p + "`\n";
    for (const auto& p : doc.only_cur) out += "- new in current: `" + p + "`\n";
    for (const auto& m : doc.string_mismatches) out += "- string drift: " + m + "\n";
    out += "\n";
  }
  return out;
}

std::string diff_to_csv(const std::vector<DocDiff>& diffs) {
  std::string out = "doc,path,base,current,ratio,gated,regressed\n";
  for (const auto& doc : diffs) {
    for (const auto& d : doc.deltas) {
      CsvRow row;
      row.add(doc.name).add(d.path);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", d.base);
      row.add(buf);
      std::snprintf(buf, sizeof buf, "%.17g", d.cur);
      row.add(buf);
      std::snprintf(buf, sizeof buf, "%.6g", d.base != 0 ? d.cur / d.base : 0.0);
      row.add(buf);
      row.add(d.gated ? 1 : 0).add(d.regressed ? 1 : 0);
      out += row.str();
      out += '\n';
    }
  }
  return out;
}

}  // namespace optrep::obs
