#include "obs/metrics.h"

#include <algorithm>

namespace optrep::obs {

std::uint64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target value, 1-based; q=0 maps to rank 1 (the minimum).
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5));
  // The extreme ranks are known exactly — don't quantize them.
  if (target == 1) return min_;
  if (target >= count_) return max_;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    cum += buckets_[i];
    if (cum >= target) {
      return std::clamp(bucket_midpoint(i), min_, max_);
    }
  }
  return max_;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  s.min = min();
  s.max = max_;
  s.p50 = percentile(0.50);
  s.p90 = percentile(0.90);
  s.p99 = percentile(0.99);
  s.p999 = percentile(0.999);
  return s;
}

}  // namespace optrep::obs
