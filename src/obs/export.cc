#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace optrep::obs {

// ---------------------------------------------------------------------------
// JsonWriter
// ---------------------------------------------------------------------------

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value follows its key; no separator
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back() == '1') out_.push_back(',');
    has_elem_.back() = '1';
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  stack_.push_back('o');
  has_elem_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  OPTREP_CHECK_MSG(!stack_.empty() && stack_.back() == 'o', "unbalanced end_object");
  stack_.pop_back();
  has_elem_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  stack_.push_back('a');
  has_elem_.push_back('0');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  OPTREP_CHECK_MSG(!stack_.empty() && stack_.back() == 'a', "unbalanced end_array");
  stack_.pop_back();
  has_elem_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  OPTREP_CHECK_MSG(!stack_.empty() && stack_.back() == 'o', "key outside object");
  comma();
  out_.push_back('"');
  out_ += json_escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma();
  out_.push_back('"');
  out_ += json_escape(v);
  out_.push_back('"');
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[32];
  // %.17g round-trips IEEE doubles exactly; identical inputs render
  // byte-identically, which the determinism contract depends on.
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  comma();
  out_ += json;
  return *this;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// CsvRow
// ---------------------------------------------------------------------------

CsvRow& CsvRow::add(std::string_view v) {
  if (!line_.empty()) line_.push_back(',');
  line_ += v;
  return *this;
}

CsvRow& CsvRow::add(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return add(std::string_view(buf));
}

CsvRow& CsvRow::add(int v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%d", v);
  return add(std::string_view(buf));
}

CsvRow& CsvRow::add(double v, int precision) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return add(std::string_view(buf));
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

void write_metrics(JsonWriter& w, const Registry& reg) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : reg.counters()) w.field(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : reg.gauges()) {
    w.key(name).begin_object();
    w.field("value", g.value());
    w.field("max", g.max());
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : reg.histograms()) {
    const Histogram::Snapshot s = h.snapshot();
    w.key(name).begin_object();
    w.field("count", s.count);
    w.field("sum", s.sum);
    w.field("min", s.min);
    w.field("max", s.max);
    w.field("p50", s.p50);
    w.field("p90", s.p90);
    w.field("p99", s.p99);
    w.field("p999", s.p999);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string metrics_to_json(const Registry& reg) {
  JsonWriter w;
  write_metrics(w, reg);
  return w.take();
}

std::string metrics_to_csv(const Registry& reg) {
  std::string out = "kind,name,field,value\n";
  for (const auto& [name, c] : reg.counters()) {
    out += CsvRow().add("counter").add(name).add("value").add(c.value()).str();
    out.push_back('\n');
  }
  for (const auto& [name, g] : reg.gauges()) {
    out += CsvRow().add("gauge").add(name).add("value").add(std::uint64_t(g.value())).str();
    out.push_back('\n');
    out += CsvRow().add("gauge").add(name).add("max").add(std::uint64_t(g.max())).str();
    out.push_back('\n');
  }
  for (const auto& [name, h] : reg.histograms()) {
    const Histogram::Snapshot s = h.snapshot();
    const std::pair<const char*, std::uint64_t> fields[] = {
        {"count", s.count}, {"sum", s.sum}, {"min", s.min},   {"max", s.max},
        {"p50", s.p50},     {"p90", s.p90}, {"p99", s.p99},   {"p999", s.p999},
    };
    for (const auto& [f, v] : fields) {
      out += CsvRow().add("histogram").add(name).add(f).add(v).str();
      out.push_back('\n');
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

void write_trace_event(JsonWriter& w, const TraceEvent& e) {
  w.begin_object();
  w.field("t", e.at);
  w.field("session", e.session);
  w.field("type", to_string(e.type));
  w.field("dir", e.forward ? "fwd" : "rev");
  w.field("site", std::uint64_t{e.site.value});
  w.field("value", e.value);
  w.field("bits", e.bits);
  w.end_object();
}

std::string trace_to_json(const Tracer& t) {
  // Assembled by hand so each event sits on its own line (greppable output
  // that is still one valid JSON document).
  JsonWriter hdr;
  hdr.begin_object();
  hdr.field("schema", "optrep.trace/v1");
  hdr.field("capacity", std::uint64_t{t.capacity()});
  hdr.field("total_recorded", t.total_recorded());
  hdr.field("dropped", t.dropped());
  std::string out = hdr.take();  // deliberately unterminated: events follow
  out += ",\"events\":[";
  for (std::size_t i = 0; i < t.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    JsonWriter w;
    write_trace_event(w, t.event(i));
    out += w.str();
  }
  out += "\n]}\n";
  return out;
}

std::string trace_to_csv(const Tracer& t) {
  std::string out = "t,session,type,dir,site,value,bits\n";
  for (std::size_t i = 0; i < t.size(); ++i) {
    const TraceEvent& e = t.event(i);
    out += CsvRow()
               .add(e.at, 9)
               .add(e.session)
               .add(to_string(e.type))
               .add(e.forward ? "fwd" : "rev")
               .add(std::uint64_t{e.site.value})
               .add(e.value)
               .add(e.bits)
               .str();
    out.push_back('\n');
  }
  return out;
}

// ---------------------------------------------------------------------------
// SyncReport
// ---------------------------------------------------------------------------

std::uint64_t table2_upper_bound_bits(const CostModel& cm, vv::VectorKind kind) {
  switch (kind) {
    case vv::VectorKind::kBrv: return cm.brv_upper_bound_bits();
    case vv::VectorKind::kCrv: return cm.crv_upper_bound_bits();
    case vv::VectorKind::kSrv: return cm.srv_upper_bound_bits();
  }
  return 0;
}

bool within_table2_bound(const CostModel& cm, vv::VectorKind kind,
                         const vv::SyncReport& r) {
  // The COMPARE probes are a separate protocol with their own 2·log(mn)
  // budget (§3.3); sessions fold them into the traffic totals, so the check
  // allows for them on top of the Table 2 synchronization bound.
  return r.total_bits() <= table2_upper_bound_bits(cm, kind) + vv::compare_cost_bits(cm);
}

void write_sync_report(JsonWriter& w, const vv::SyncReport& r) {
  w.begin_object();
  w.field("initial_relation", vv::to_string(r.initial_relation));
  w.field("bits_fwd", r.bits_fwd);
  w.field("bits_rev", r.bits_rev);
  w.field("bytes_fwd", r.bytes_fwd);
  w.field("bytes_rev", r.bytes_rev);
  w.field("msgs_fwd", r.msgs_fwd);
  w.field("msgs_rev", r.msgs_rev);
  w.field("elems_sent", r.elems_sent);
  w.field("elems_applied", r.elems_applied);
  w.field("elems_redundant", r.elems_redundant);
  w.field("elems_straggler", r.elems_straggler);
  w.field("elems_after_halt", r.elems_after_halt);
  w.field("skip_msgs", r.skip_msgs);
  w.field("segments_skipped", r.segments_skipped);
  w.field("ack_msgs", r.ack_msgs);
  w.field("duration", r.duration);
  w.field("receiver_done_at", r.receiver_done_at);
  w.end_object();
}

std::string sync_report_to_json(const vv::SyncReport& r, vv::VectorKind kind,
                                const CostModel& cm, Registry* bound_sink) {
  const bool ok = within_table2_bound(cm, kind, r);
  if (!ok && bound_sink != nullptr) bound_sink->counter("obs.bound_violations").inc();
  JsonWriter w;
  w.begin_object();
  w.field("kind", vv::to_string(kind));
  w.key("report");
  write_sync_report(w, r);
  w.field("table2_upper_bound_bits", table2_upper_bound_bits(cm, kind));
  w.field("within_table2_bound", ok);
  w.end_object();
  return w.take();
}

std::string sync_report_csv_header() {
  return CsvRow()
      .add("relation")
      .add("bits_fwd")
      .add("bits_rev")
      .add("bytes_fwd")
      .add("bytes_rev")
      .add("msgs_fwd")
      .add("msgs_rev")
      .add("elems_sent")
      .add("elems_applied")
      .add("elems_redundant")
      .add("elems_straggler")
      .add("elems_after_halt")
      .add("skip_msgs")
      .add("segments_skipped")
      .add("ack_msgs")
      .add("duration")
      .str();
}

std::string sync_report_csv_row(const vv::SyncReport& r) {
  return CsvRow()
      .add(vv::to_string(r.initial_relation))
      .add(r.bits_fwd)
      .add(r.bits_rev)
      .add(r.bytes_fwd)
      .add(r.bytes_rev)
      .add(r.msgs_fwd)
      .add(r.msgs_rev)
      .add(r.elems_sent)
      .add(r.elems_applied)
      .add(r.elems_redundant)
      .add(r.elems_straggler)
      .add(r.elems_after_halt)
      .add(r.skip_msgs)
      .add(r.segments_skipped)
      .add(r.ack_msgs)
      .add(r.duration, 9)
      .str();
}

}  // namespace optrep::obs
