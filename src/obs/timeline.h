// Time-series telemetry: a periodic, allocation-bounded snapshot sampler.
//
// A Timeline records sample columns of named integer series against a single
// monotone axis — simulated time for a live run (hooked on the event loop's
// time advance, see sim::EventLoop::set_time_sampler), session count for an
// ideal-mode run where the clock never moves, or run index for an rt sweep.
// Everything end-of-run exporters snapshot once, a timeline snapshots every
// interval, which is what turns "the run converged" into "the run converged
// like *this*" (the repl systems feed their residual-divergence probe in as
// the `repl.divergence` series).
//
// Allocation bounds: the axis column is reserved for max_samples at
// construction and every series reserves max_samples when it first appears
// (at most max_series one-time allocations); after that, sampling touches
// the allocator only through the registry-name scratch buffer, whose
// capacity is retained. Samples past max_samples and series past max_series
// are counted (dropped_samples / dropped_series), never silently lost.
//
// Export (timeline_to_json, schema optrep.timeline/v1): series are
// delta-encoded — the first value raw, then successive differences — with
// name-sorted series order and %.17g axis doubles, so equal runs export
// byte-identical documents (the determinism contract of docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace optrep::obs {

class Timeline {
 public:
  struct Config {
    std::size_t max_samples{4096};
    std::size_t max_series{128};
  };

  Timeline() : Timeline(Config{}) {}
  explicit Timeline(Config cfg) : cfg_(cfg) { xs_.reserve(cfg_.max_samples); }

  // What the x column means ("time_s", "sessions", "run", ...). Exported
  // verbatim; set once before the first sample.
  void set_axis(std::string_view name) { axis_.assign(name); }
  const std::string& axis() const { return axis_; }

  // Start the next sample column at axis position x. Existing series carry
  // their previous value forward (a zero delta) until record() overwrites
  // them within this sample, so series sampled at different cadences stay
  // column-aligned.
  void begin_sample(double x) {
    if (xs_.size() >= cfg_.max_samples) {
      ++dropped_samples_;
      live_ = false;
      return;
    }
    live_ = true;
    xs_.push_back(x);
    for (Series& s : series_) s.values.push_back(s.values.back());
  }

  // Record one value into the current sample, creating the series on first
  // use. Values land as int64 (counters in this codebase stay far below the
  // 2^63 line). No-op while the current sample is dropped.
  void record(std::string_view series, std::int64_t value) {
    if (!live_) return;
    auto it = index_.find(series);
    if (it == index_.end()) {
      if (series_.size() >= cfg_.max_series) {
        ++dropped_series_;
        return;
      }
      series_.emplace_back();
      Series& s = series_.back();
      s.name.assign(series);
      s.start = xs_.size() - 1;
      s.values.reserve(cfg_.max_samples - s.start);
      s.values.push_back(value);
      index_.emplace(s.name, series_.size() - 1);
      return;
    }
    series_[it->second].values.back() = value;
  }

  // Record every instrument of a registry into the current sample: counters
  // and gauges under their own names, histograms as <name>.count / .p50 /
  // .p99 / .p999. The scratch buffer keeps repeated sampling off the
  // allocator once every suffix has been built once.
  void sample_registry(const Registry& reg) {
    if (!live_) return;
    for (const auto& [name, c] : reg.counters()) {
      record(name, static_cast<std::int64_t>(c.value()));
    }
    for (const auto& [name, g] : reg.gauges()) record(name, g.value());
    for (const auto& [name, h] : reg.histograms()) {
      const Histogram::Snapshot s = h.snapshot();
      record_suffixed(name, ".count", static_cast<std::int64_t>(s.count));
      record_suffixed(name, ".p50", static_cast<std::int64_t>(s.p50));
      record_suffixed(name, ".p99", static_cast<std::int64_t>(s.p99));
      record_suffixed(name, ".p999", static_cast<std::int64_t>(s.p999));
    }
  }

  struct Series {
    std::string name;
    std::size_t start{0};              // sample index of the first value
    std::vector<std::int64_t> values;  // raw values; delta-encoded on export
  };

  std::size_t samples() const { return xs_.size(); }
  std::size_t series_count() const { return series_.size(); }
  std::uint64_t dropped_samples() const { return dropped_samples_; }
  std::uint64_t dropped_series() const { return dropped_series_; }
  const std::vector<double>& xs() const { return xs_; }
  const std::vector<Series>& all_series() const { return series_; }

  // nullptr when the series was never recorded.
  const Series* find(std::string_view name) const {
    auto it = index_.find(name);
    return it == index_.end() ? nullptr : &series_[it->second];
  }

  // Name-sorted iteration order for the exporter (indices into all_series()).
  const std::map<std::string, std::size_t, std::less<>>& sorted_index() const {
    return index_;
  }

 private:
  void record_suffixed(std::string_view name, std::string_view suffix,
                       std::int64_t value) {
    scratch_.assign(name);
    scratch_ += suffix;
    record(scratch_, value);
  }

  Config cfg_;
  std::string axis_{"x"};
  std::string scratch_;
  std::vector<double> xs_;
  std::vector<Series> series_;  // registration order; index_ maps name → slot
  std::map<std::string, std::size_t, std::less<>> index_;
  bool live_{false};
  std::uint64_t dropped_samples_{0};
  std::uint64_t dropped_series_{0};
};

// One optrep.timeline/v1 document: header, the raw x column, then one
// delta-encoded series per line in name order.
std::string timeline_to_json(const Timeline& t);

}  // namespace optrep::obs
