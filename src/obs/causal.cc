#include "obs/causal.h"

#include <unordered_map>

#include "obs/export.h"

namespace optrep::obs {

std::string_view to_string(CausalEventType t) {
  switch (t) {
    case CausalEventType::kOrigin: return "origin";
    case CausalEventType::kSpanBegin: return "span_begin";
    case CausalEventType::kSpanEnd: return "span_end";
    case CausalEventType::kWireSend: return "send";
    case CausalEventType::kWireRecv: return "recv";
    case CausalEventType::kFault: return "fault";
    case CausalEventType::kApply: return "apply";
    case CausalEventType::kDeliver: return "deliver";
    case CausalEventType::kConverge: return "converge";
  }
  return "?";
}

namespace {

// One event object on one line. Only the fields meaningful for the event
// type are emitted — readers (obs/json.h DOM + tools/optrep_trace) look
// members up by name with zero defaults.
std::string event_json(const CausalEvent& e) {
  JsonWriter w;
  w.begin_object();
  w.field("t", e.at);
  w.field("type", to_string(e.type));
  switch (e.type) {
    case CausalEventType::kOrigin:
    case CausalEventType::kConverge:
      w.field("trace", e.trace);
      w.field("obj", std::uint64_t{e.obj.value});
      w.field("site", std::uint64_t{e.site.value});
      w.field("seq", e.seq);
      break;
    case CausalEventType::kDeliver:
      w.field("trace", e.trace);
      w.field("span", e.span);
      w.field("obj", std::uint64_t{e.obj.value});
      w.field("site", std::uint64_t{e.site.value});
      w.field("seq", e.seq);
      w.field("src", std::uint64_t{e.src.value});
      w.field("dst", std::uint64_t{e.dst.value});
      break;
    case CausalEventType::kSpanBegin:
      w.field("span", e.span);
      w.field("parent", e.parent);
      w.field("src", std::uint64_t{e.src.value});
      w.field("dst", std::uint64_t{e.dst.value});
      w.field("attempt", e.attempt);
      break;
    case CausalEventType::kSpanEnd:
      w.field("span", e.span);
      w.field("bits", e.bits);
      w.field("ok", e.ok);
      break;
    case CausalEventType::kWireSend:
    case CausalEventType::kWireRecv:
      w.field("span", e.span);
      w.field("dir", e.forward ? "fwd" : "rev");
      w.field("site", std::uint64_t{e.site.value});
      w.field("value", e.seq);
      w.field("bits", e.bits);
      break;
    case CausalEventType::kFault:
      w.field("span", e.span);
      w.field("dir", e.forward ? "fwd" : "rev");
      w.field("site", std::uint64_t{e.site.value});
      w.field("value", e.seq);
      w.field("fault", to_string(e.fault));
      break;
    case CausalEventType::kApply:
      w.field("span", e.span);
      w.field("site", std::uint64_t{e.site.value});
      w.field("value", e.seq);
      break;
  }
  w.end_object();
  return w.take();
}

// The shared run body: seed/ring header fields plus the events array. Used
// by both the single-run document and the sweep fragment.
void write_run_body(std::string& out, const CausalTracer& t) {
  JsonWriter hdr;
  hdr.begin_object();
  hdr.field("run_seed", t.run_seed());
  hdr.field("capacity", static_cast<std::uint64_t>(t.capacity()));
  hdr.field("total_recorded", t.total_recorded());
  hdr.field("dropped", t.dropped());
  hdr.field("spans", t.spans_opened());
  hdr.end_object();
  std::string h = hdr.take();
  out += h.substr(1, h.size() - 2);  // strip {} — splice into the caller's object
  out += ",\"events\":[";
  for (std::size_t i = 0; i < t.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += event_json(t.event(i));
  }
  out += "\n]";
}

}  // namespace

std::string causal_to_json(const CausalTracer& t) {
  std::string out = "{\"schema\":\"optrep.causal/v1\",";
  write_run_body(out, t);
  out += "}\n";
  return out;
}

std::string causal_run_fragment(const CausalTracer& t, std::uint64_t run_index) {
  JsonWriter w;
  w.begin_object();
  w.field("run", run_index);
  std::string out = w.take();  // deliberately unterminated: body follows
  out += ",";
  write_run_body(out, t);
  out += "}";
  return out;
}

std::string causal_sweep_json(const std::vector<std::string>& fragments) {
  std::string out = "{\"schema\":\"optrep.causal/v1\",\"axis\":\"run\",\"runs\":[";
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += fragments[i];
  }
  out += "\n]}\n";
  return out;
}

std::string causal_to_perfetto_json(const CausalTracer& t) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&out, &first](JsonWriter& w) {
    out += first ? "\n" : ",\n";
    first = false;
    out += w.take();
  };
  const auto slice = [&emit](const char* name, double ts_us, double dur_us,
                             std::uint64_t tid, std::uint64_t span) {
    JsonWriter w;
    w.begin_object();
    w.field("name", name);
    w.field("cat", "causal");
    w.field("ph", "X");
    w.field("ts", ts_us);
    w.field("dur", dur_us);
    w.field("pid", std::uint64_t{1});
    w.field("tid", tid);
    w.key("args").begin_object().field("span", span).end_object();
    w.end_object();
    emit(w);
  };
  // Flow phases: "s" starts a flow, "t" continues it, "f" (bp=e) binds the
  // finish to the enclosing slice/instant.
  const auto flow = [&emit](const char* ph, const char* cat, std::uint64_t id,
                            double ts_us, std::uint64_t tid) {
    JsonWriter w;
    w.begin_object();
    w.field("name", cat);
    w.field("cat", cat);
    w.field("ph", ph);
    if (ph[0] == 'f') w.field("bp", "e");
    w.field("id", id);
    w.field("ts", ts_us);
    w.field("pid", std::uint64_t{1});
    w.field("tid", tid);
    w.end_object();
    emit(w);
  };
  const auto instant = [&emit](std::string_view name, double ts_us,
                               std::uint64_t tid, std::uint64_t trace) {
    JsonWriter w;
    w.begin_object();
    w.field("name", name);
    w.field("cat", "causal");
    w.field("ph", "i");
    w.field("s", "t");
    w.field("ts", ts_us);
    w.field("pid", std::uint64_t{1});
    w.field("tid", tid);
    w.key("args").begin_object().field("trace", trace).end_object();
    w.end_object();
    emit(w);
  };
  // Track per site: tid = site id + 1 (tid 0 renders poorly in viewers).
  const auto tid_of = [](SiteId s) { return std::uint64_t{s.value} + 1; };
  const auto us = [](double at) { return at * 1e6; };

  // Pair span begins with their ends in ring order; emission happens at the
  // end event so output order follows the ring (deterministic).
  std::unordered_map<std::uint64_t, CausalEvent> open;
  std::unordered_map<std::uint64_t, bool> trace_started;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const CausalEvent& e = t.event(i);
    switch (e.type) {
      case CausalEventType::kSpanBegin:
        open[e.span] = e;
        break;
      case CausalEventType::kSpanEnd: {
        auto it = open.find(e.span);
        if (it == open.end()) break;  // begin fell off the ring
        const CausalEvent& b = it->second;
        const double dur = us(e.at) - us(b.at);
        // Sender and receiver slices joined by a flow: the hop is visible on
        // both sites' tracks, and the arrow shows the direction.
        slice("sync send", us(b.at), dur, tid_of(b.src), e.span);
        slice("sync recv", us(b.at), dur, tid_of(b.dst), e.span);
        flow("s", "hop", e.span, us(b.at), tid_of(b.src));
        flow("f", "hop", e.span, us(e.at), tid_of(b.dst));
        open.erase(it);
        break;
      }
      case CausalEventType::kOrigin:
        instant("origin", us(e.at), tid_of(e.site), e.trace);
        flow("s", "update", e.trace, us(e.at), tid_of(e.site));
        trace_started[e.trace] = true;
        break;
      case CausalEventType::kDeliver:
        instant("deliver", us(e.at), tid_of(e.dst), e.trace);
        if (trace_started.contains(e.trace)) {
          flow("t", "update", e.trace, us(e.at), tid_of(e.dst));
        }
        break;
      case CausalEventType::kConverge:
        instant("converge", us(e.at), tid_of(e.site), e.trace);
        if (trace_started.contains(e.trace)) {
          flow("t", "update", e.trace, us(e.at), tid_of(e.site));
        }
        break;
      default:
        break;
    }
  }
  out += "\n],\"otherData\":{";
  JsonWriter meta;
  meta.begin_object();
  meta.field("schema", "optrep.causal.perfetto/v1");
  meta.field("run_seed", t.run_seed());
  meta.field("total_recorded", t.total_recorded());
  meta.field("dropped", t.dropped());
  meta.end_object();
  std::string m = meta.take();
  out += m.substr(1, m.size() - 2);  // strip {}
  out += "}}\n";
  return out;
}

}  // namespace optrep::obs
