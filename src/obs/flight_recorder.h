// Protocol flight recorder: a fixed ring of the last K protocol events per
// run, frozen at the first anomaly and dumped as a reproducible post-mortem.
//
// Sessions feed every wire message (and every injected fault, via the
// sim::FaultInjector observer) into the ring through the same tap that serves
// the Tracer; record() is a ring write with no heap allocation. When a
// Table 2 bound violation, a typed decode error, or retry exhaustion fires,
// trigger() snapshots the ring — the K events *leading up to* the anomaly —
// so later traffic cannot overwrite the evidence. dump_json() exports the
// frozen snapshot (or the live ring when nothing ever triggered) as an
// optrep.flight/v1 document (docs/OBSERVABILITY.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.h"
#include "obs/trace.h"

namespace optrep::obs {

// What fault injection did to the message this record describes. kNone for
// ordinary wire records; kDecodeError marks a corruption the typed codec
// itself rejected (the subset of kCorrupted the checksum model need not
// catch).
enum class FlightFault : std::uint8_t {
  kNone,
  kDropped,
  kDuplicated,
  kReordered,
  kCorrupted,
  kDecodeError,
};

std::string_view to_string(FlightFault f);

struct FlightRecord {
  double at{0};
  std::uint64_t session{0};
  TraceEventType type{TraceEventType::kElemSent};
  bool forward{true};
  SiteId site{};
  std::uint64_t value{0};
  std::uint64_t bits{0};
  FlightFault fault{FlightFault::kNone};
};

class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity)
      : buf_(capacity) {
    snapshot_.reserve(capacity);
  }

  // Ring write; never allocates.
  void record(const FlightRecord& r) {
    buf_[total_ % buf_.size()] = r;
    ++total_;
  }

  // Reproducibility context for the dump header: the run's fault-injection
  // seed (set once by the system wiring the recorder) and the retry attempt
  // currently executing (kept current by vv::sync_with_recovery). Both are
  // captured into the frozen header at trigger time, so a dump names the
  // exact --fault-seed / attempt to replay from the command line.
  void set_fault_seed(std::uint64_t seed) { fault_seed_ = seed; }
  void note_attempt(std::uint32_t attempt) { attempt_ = attempt; }

  // First trigger freezes the ring and keeps the reason; later triggers only
  // count (the first anomaly is the one worth replaying — everything after
  // it happened in an already-anomalous run).
  void trigger(std::string_view reason, double at) {
    ++trigger_count_;
    if (triggered_) return;
    triggered_ = true;
    reason_.assign(reason);
    triggered_at_ = at;
    trigger_attempt_ = attempt_;
    trigger_seq_ = total_;  // sequence number of the triggering anomaly
    snapshot_.clear();
    const std::size_t n = size();
    for (std::size_t i = 0; i < n; ++i) snapshot_.push_back(event(i));
    snapshot_total_ = total_;
  }

  bool triggered() const { return triggered_; }
  std::uint64_t trigger_count() const { return trigger_count_; }
  const std::string& reason() const { return reason_; }
  double triggered_at() const { return triggered_at_; }
  std::uint64_t fault_seed() const { return fault_seed_; }
  std::uint32_t trigger_attempt() const { return trigger_attempt_; }
  std::uint64_t trigger_seq() const { return trigger_seq_; }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const {
    return total_ < buf_.size() ? static_cast<std::size_t>(total_) : buf_.size();
  }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return total_ - size(); }

  // i-th live record, oldest first.
  const FlightRecord& event(std::size_t i) const {
    const std::size_t begin = static_cast<std::size_t>(total_ % buf_.size());
    return total_ <= buf_.size() ? buf_[i] : buf_[(begin + i) % buf_.size()];
  }

  // The records a dump exports: the frozen snapshot after a trigger, the
  // live ring otherwise.
  std::size_t dump_size() const { return triggered_ ? snapshot_.size() : size(); }
  const FlightRecord& dump_event(std::size_t i) const {
    return triggered_ ? snapshot_[i] : event(i);
  }
  std::uint64_t dump_total_recorded() const {
    return triggered_ ? snapshot_total_ : total_;
  }

  void clear() {
    total_ = 0;
    triggered_ = false;
    trigger_count_ = 0;
    reason_.clear();
    triggered_at_ = 0;
    trigger_attempt_ = 0;
    trigger_seq_ = 0;
    snapshot_.clear();
    snapshot_total_ = 0;
  }

 private:
  std::vector<FlightRecord> buf_;
  std::uint64_t total_{0};
  bool triggered_{false};
  std::uint64_t trigger_count_{0};
  std::string reason_;
  double triggered_at_{0};
  std::uint64_t fault_seed_{0};
  std::uint32_t attempt_{0};          // retry attempt currently executing
  std::uint32_t trigger_attempt_{0};  // ...frozen at trigger time
  std::uint64_t trigger_seq_{0};      // total_ when the trigger fired
  std::vector<FlightRecord> snapshot_;  // frozen ring contents at trigger time
  std::uint64_t snapshot_total_{0};
};

// One optrep.flight/v1 document: trigger header plus one record per line,
// oldest first.
std::string flight_to_json(const FlightRecorder& r);

}  // namespace optrep::obs
