// Structural diffing of measurement artifacts and the regression gate.
//
// optrep_report compares two sets of BENCH_*.json / optrep.run/v1 documents
// (a committed baseline vs. the current build's output). Documents are
// flattened to dotted scalar paths (obs/json.h); paths present in both sides
// become MetricDeltas, and a small rule table decides which paths are
// *gated* — i.e. count as regressions when they move in the bad direction by
// more than the threshold. Everything else is reported but never fails the
// gate (bench tables legitimately gain rows; simulated durations wobble with
// parameters).
//
// Rule semantics: the first rule whose substring occurs in the path decides
// the direction (more bits/bytes/wall-ns/γ/drops = bad; less consistency =
// bad); unmatched paths are informational. A baseline of zero regresses on
// any increase (thresholds are relative).
#pragma once

#include <string>
#include <vector>

#include "obs/json.h"

namespace optrep::obs {

struct GateRule {
  std::string substring;   // matched against the flattened path
  bool increase_is_bad{true};
};

// Built-in rule table covering the repo's schemas: traffic (bits/bytes),
// wall-clock spans (wall_ns), redundancy (Γ), skip-accounting (gamma),
// dropped trace/span events, bound violations and histogram tail latency
// (p999) gate on increase; "within"/"consistent" booleans gate on decrease.
std::vector<GateRule> default_gate_rules();

struct DiffOptions {
  double threshold{0.05};  // relative: cur > base*(1+t) / cur < base*(1-t)
  std::vector<GateRule> rules = default_gate_rules();
  // Strict mode also fails the gate on paths missing from one side and on
  // string mismatches (schema/kind drift), not only on numeric regressions.
  bool strict{false};
};

struct MetricDelta {
  std::string path;
  double base{0};
  double cur{0};
  bool gated{false};      // a rule matched this path
  bool regressed{false};  // gated and moved in the bad direction beyond threshold
  bool changed() const { return base != cur; }
  // Relative change; +∞ conventionally rendered as "new" when base == 0.
  double ratio() const { return base != 0 ? cur / base : 0; }
};

// Comparison of one same-named document pair.
struct DocDiff {
  std::string name;                  // e.g. "BENCH_sync_state.json"
  std::vector<MetricDelta> deltas;   // numeric paths present on both sides
  std::vector<std::string> only_base;          // numeric paths that disappeared
  std::vector<std::string> only_cur;           // numeric paths that appeared
  std::vector<std::string> string_mismatches;  // "path: 'a' -> 'b'"
  std::size_t regressions() const;
  std::size_t changes() const;
};

DocDiff diff_docs(std::string name, const FlatDoc& base, const FlatDoc& cur,
                  const DiffOptions& opt);

// Did any compared document regress (or, under strict, drift structurally)?
bool gate_failed(const std::vector<DocDiff>& diffs, const DiffOptions& opt);

// Renderers. Markdown shows one table per document (changed or regressed
// rows plus unchanged-count footers); CSV is one flat
// "doc,path,base,current,ratio,gated,regressed" table.
std::string diff_to_markdown(const std::vector<DocDiff>& diffs, const DiffOptions& opt);
std::string diff_to_csv(const std::vector<DocDiff>& diffs);

}  // namespace optrep::obs
