// Machine-readable serialization of observability state: a small
// deterministic JSON writer, CSV row builder, and exporters for metric
// snapshots, trace slices and SyncReports. These replace the hand-rolled
// printf emitters that used to live in the CLI and benches.
//
// Determinism contract (what makes exported artifacts diffable in CI): all
// registry iteration is name-sorted, all numbers are formatted with fixed
// rules (%.17g for doubles, which round-trips exactly), and nothing depends
// on pointer values or unordered-container iteration order. Two runs with
// identical seeds therefore produce byte-identical output.
//
// JSON schemas are documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/cost_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vv/session.h"

namespace optrep::obs {

// Minimal streaming JSON writer: explicit begin/end with automatic comma
// placement. No pretty-printing beyond what the schema needs; output is one
// line unless callers embed newlines via raw().
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint32_t v) { return value(std::uint64_t{v}); }
  JsonWriter& value(std::int32_t v) { return value(std::int64_t{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);
  JsonWriter& null();

  template <class T>
  JsonWriter& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  // Splice a pre-rendered JSON fragment in value position.
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();

  std::string out_;
  // Nesting state: whether the current container already has an element.
  std::string stack_;  // 'o' = object, 'a' = array; parallel "has element" flags
  std::string has_elem_;
  bool pending_key_{false};
};

std::string json_escape(std::string_view s);

// One CSV row (or header) with deterministic formatting; no quoting is
// needed because emitted fields never contain commas.
class CsvRow {
 public:
  CsvRow& add(std::string_view v);
  CsvRow& add(const char* v) { return add(std::string_view(v)); }
  CsvRow& add(std::uint64_t v);
  CsvRow& add(std::uint32_t v) { return add(std::uint64_t{v}); }
  CsvRow& add(int v);
  CsvRow& add(double v, int precision = 3);
  const std::string& str() const { return line_; }

 private:
  std::string line_;
};

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

// {"counters":{...},"gauges":{name:{"value":..,"max":..}},"histograms":
//  {name:{"count":..,"sum":..,"min":..,"max":..,"p50":..,"p90":..,"p99":..}}}
void write_metrics(JsonWriter& w, const Registry& reg);
std::string metrics_to_json(const Registry& reg);
// CSV: one "kind,name,field,value" row per scalar.
std::string metrics_to_csv(const Registry& reg);

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

void write_trace_event(JsonWriter& w, const TraceEvent& e);
// {"schema":...,"capacity":..,"total":..,"dropped":..,"events":[...]}
// Events render one per line for greppability; still valid JSON.
std::string trace_to_json(const Tracer& t);
std::string trace_to_csv(const Tracer& t);

// ---------------------------------------------------------------------------
// SyncReport
// ---------------------------------------------------------------------------

// Does the session's measured traffic respect the Table 2 upper bound for
// this vector kind? (Meaningful for kIdeal runs; pipelined sessions may
// legitimately overshoot by up to β = bandwidth·rtt, §3.1.)
bool within_table2_bound(const CostModel& cm, vv::VectorKind kind,
                         const vv::SyncReport& r);
std::uint64_t table2_upper_bound_bits(const CostModel& cm, vv::VectorKind kind);

void write_sync_report(JsonWriter& w, const vv::SyncReport& r);
// Exports the report and cross-checks it against the Table 2 bound; when the
// bound is exceeded the report says so ("within_table2_bound":false) and, if
// a registry is supplied, its "obs.bound_violations" counter advances — a
// session can never exceed the paper's bound silently.
std::string sync_report_to_json(const vv::SyncReport& r, vv::VectorKind kind,
                                const CostModel& cm, Registry* bound_sink = nullptr);

std::string sync_report_csv_header();
std::string sync_report_csv_row(const vv::SyncReport& r);

}  // namespace optrep::obs
