// Structured protocol tracing: typed events, ring-buffer bounded.
//
// A Tracer records fixed-size TraceEvents — one per protocol occurrence worth
// auditing (element sent/applied/redundant, SKIP issued/honored, HALT, ack,
// session begin/end) — stamped with simulated time and a session id. The
// buffer is allocated once at construction; when it fills, the oldest event
// is overwritten and an explicit drop counter advances, so truncation is
// always visible in exported artifacts (see obs/export.h).
//
// Tracer::record is allocation-free: one array store plus counter updates.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "sim/event_loop.h"

namespace optrep::obs {

enum class TraceEventType : std::uint8_t {
  kSessionBegin,    // a synchronization session started
  kElemSent,        // sender put one vector element on the wire
  kElemApplied,     // receiver wrote a new value (counts toward |Δ|)
  kElemRedundant,   // receiver processed a known element pre-halt (|Γ|)
  kElemStraggler,   // known element ignored while a skip was pending
  kSkipIssued,      // SRV receiver requested a segment skip
  kSkipHonored,     // SRV sender elided a segment (observed γ)
  kHalt,            // negative/stop response or end-of-vector marker
  kAck,             // stop-and-wait acknowledgement
  kProbe,           // COMPARE probe element
  kVerdict,         // COMPARE domination bit
  kSessionEnd,      // session reached quiescence; `bits` carries total bits
};

std::string_view to_string(TraceEventType t);

struct TraceEvent {
  sim::Time at{0};           // simulated time of the occurrence
  std::uint64_t session{0};  // session id (0 = outside any session)
  TraceEventType type{TraceEventType::kElemSent};
  bool forward{true};        // pertains to the sender→receiver direction
  SiteId site{};             // element site, when applicable
  std::uint64_t value{0};    // element value / SKIP segment index
  std::uint64_t bits{0};     // model bits charged (wire events), else 0
};

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit Tracer(std::size_t capacity = kDefaultCapacity) : buf_(capacity) {
    OPTREP_CHECK_MSG(capacity > 0, "tracer capacity must be positive");
  }

  // No allocation: overwrites the oldest retained event when full and
  // advances dropped().
  void record(const TraceEvent& e) {
    ++total_;
    if (size_ < buf_.size()) {
      buf_[(head_ + size_) % buf_.size()] = e;
      ++size_;
    } else {
      buf_[head_] = e;
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
    }
  }

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }            // retained events
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return dropped_; }

  // i-th oldest retained event, i ∈ [0, size()).
  const TraceEvent& event(std::size_t i) const {
    OPTREP_DCHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  // Session ids handed to protocol runs so events are attributable.
  std::uint64_t next_session_id() { return ++last_session_; }

  void clear() {
    head_ = size_ = 0;
    total_ = dropped_ = 0;
  }

 private:
  std::vector<TraceEvent> buf_;  // sized once; never reallocated
  std::size_t head_{0};
  std::size_t size_{0};
  std::uint64_t total_{0};
  std::uint64_t dropped_{0};
  std::uint64_t last_session_{0};
};

}  // namespace optrep::obs
