// A minimal JSON reader for the repo's own artifacts.
//
// optrep_report must consume what the exporters in obs/export.h and the
// bench reporters produce (optrep.run/v1, optrep.bench/v1) without adding a
// third-party dependency, so this is a small recursive-descent parser into a
// DOM value plus a flattener that turns a document into dotted scalar paths
// ("rows[3].srv_bits" → 123) for structural diffing (obs/report_diff.h).
//
// Scope: full JSON syntax (objects, arrays, strings with the escapes our
// writer emits plus \uXXXX, numbers, booleans, null). Not a general-purpose
// validator — inputs are trusted artifacts; malformed input yields a parse
// error with byte offset, never UB.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace optrep::obs {

struct JsonValue {
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type{Type::kNull};
  bool boolean{false};
  double number{0};
  std::string string;
  std::vector<JsonValue> items;                             // kArray
  std::vector<std::pair<std::string, JsonValue>> members;   // kObject, source order

  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }

  // First member with this key, or nullptr. Linear scan: documents here are
  // small and member order is meaningful (source order is preserved).
  const JsonValue* find(std::string_view key) const;
};

// Parse `text` into *out. Returns false on error and, if `error` is non-null,
// fills it with a message that includes the byte offset.
bool json_parse(std::string_view text, JsonValue* out, std::string* error = nullptr);

// A JSON document reduced to scalar leaves addressed by dotted path
// ("metrics.histograms.vv\.session_bits.p99" keys are NOT escaped — paths
// are matched by substring in the gate rules, so dots inside names are
// harmless). Booleans flatten into `numbers` as 0/1; null leaves are skipped.
struct FlatDoc {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
};
FlatDoc json_flatten(const JsonValue& root);

}  // namespace optrep::obs
