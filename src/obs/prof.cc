#include "obs/prof.h"

#include "obs/export.h"

namespace optrep::prof {

// Chrome-trace JSON object format: https://docs.google.com/document/d/1CvAC…
// (the de-facto schema consumed by chrome://tracing and ui.perfetto.dev).
// Each retained span becomes one "X" (complete) event; timestamps and
// durations are microseconds as doubles, preserving nanosecond resolution.
// Events render one per line for greppability, matching trace_to_json.
std::string profile_to_json(const Profiler& p) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const SpanRecord& s = p.span(i);
    obs::JsonWriter ev;
    ev.begin_object();
    ev.field("name", s.name != nullptr ? s.name : "?");
    ev.field("cat", "optrep");
    ev.field("ph", "X");
    ev.field("ts", static_cast<double>(s.start_ns) / 1000.0);
    ev.field("dur", static_cast<double>(s.dur_ns) / 1000.0);
    ev.field("pid", std::uint64_t{1});
    ev.field("tid", s.tid);
    ev.key("args").begin_object();
    ev.field("depth", s.depth);
    ev.end_object();
    ev.end_object();
    w.raw("\n" + ev.take());
  }
  w.end_array();
  w.field("displayTimeUnit", "ns");
  w.key("otherData").begin_object();
  w.field("schema", "optrep.profile/v1");
  w.field("capacity", static_cast<std::uint64_t>(p.capacity()));
  w.field("total_recorded", p.total_recorded());
  w.field("dropped", p.dropped());
  w.end_object();
  w.end_object();
  std::string out = w.take();
  out += '\n';
  return out;
}

}  // namespace optrep::prof
