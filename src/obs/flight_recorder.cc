#include "obs/flight_recorder.h"

#include "obs/export.h"

namespace optrep::obs {

std::string_view to_string(FlightFault f) {
  switch (f) {
    case FlightFault::kNone: return "none";
    case FlightFault::kDropped: return "dropped";
    case FlightFault::kDuplicated: return "duplicated";
    case FlightFault::kReordered: return "reordered";
    case FlightFault::kCorrupted: return "corrupted";
    case FlightFault::kDecodeError: return "decode_error";
  }
  return "?";
}

std::string flight_to_json(const FlightRecorder& r) {
  JsonWriter hdr;
  hdr.begin_object();
  hdr.field("schema", "optrep.flight/v1");
  hdr.field("capacity", static_cast<std::uint64_t>(r.capacity()));
  hdr.field("total_recorded", r.dump_total_recorded());
  hdr.field("triggered", r.triggered());
  hdr.field("trigger_count", r.trigger_count());
  hdr.field("trigger_reason", r.reason());
  hdr.field("trigger_at", r.triggered_at());
  hdr.field("fault_seed", r.fault_seed());
  hdr.field("trigger_attempt", r.trigger_attempt());
  hdr.field("trigger_seq", r.trigger_seq());
  std::string out = hdr.take();  // deliberately unterminated: events follow
  out += ",\"events\":[";
  for (std::size_t i = 0; i < r.dump_size(); ++i) {
    const FlightRecord& e = r.dump_event(i);
    out += i == 0 ? "\n" : ",\n";
    JsonWriter w;
    w.begin_object();
    w.field("t", e.at);
    w.field("session", e.session);
    w.field("type", to_string(e.type));
    w.field("dir", e.forward ? "fwd" : "rev");
    w.field("site", std::uint64_t{e.site.value});
    w.field("value", e.value);
    w.field("bits", e.bits);
    w.field("fault", to_string(e.fault));
    w.end_object();
    out += w.str();
  }
  out += "\n]}\n";
  return out;
}

}  // namespace optrep::obs
