#include "obs/trace.h"

namespace optrep::obs {

std::string_view to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kSessionBegin: return "session_begin";
    case TraceEventType::kElemSent: return "elem_sent";
    case TraceEventType::kElemApplied: return "elem_applied";
    case TraceEventType::kElemRedundant: return "elem_redundant";
    case TraceEventType::kElemStraggler: return "elem_straggler";
    case TraceEventType::kSkipIssued: return "skip_issued";
    case TraceEventType::kSkipHonored: return "skip_honored";
    case TraceEventType::kHalt: return "halt";
    case TraceEventType::kAck: return "ack";
    case TraceEventType::kProbe: return "probe";
    case TraceEventType::kVerdict: return "verdict";
    case TraceEventType::kSessionEnd: return "session_end";
  }
  return "?";
}

}  // namespace optrep::obs
