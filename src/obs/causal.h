// Causal propagation tracing: trace contexts for updates, spans for
// synchronization hops, and the deterministic optrep.causal/v1 dump.
//
// A CausalTracer answers *why* the fleet converged when it did: every
// originating update opens a trace (trace id derived from the run seed and
// the update's (object, site, seq) identity — reproducible across thread
// counts), every synchronization session opens a span (sequential id, parent
// link for retry attempts), and the transport stamps send → receive, fault,
// and element-apply edges onto the active span. The repl systems emit the
// semantic events: kDeliver when an update becomes known at a site and
// kConverge when it stops diverging (every replica currently hosting the
// object has absorbed it — a later replica birth can re-open the trace, in
// which case a further kConverge closes it again; analyzers use the last).
//
// record() is a ring write with no heap allocation — the tracing-off cost is
// a null check, and the tracing-on steady state allocates nothing (both
// gated by bench_microops). Exports are byte-deterministic: events leave in
// ring order, floats print as %.17g, and sweep documents are assembled from
// per-run fragments in config order (see tools/optrep_cli.cc).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "obs/flight_recorder.h"

namespace optrep::obs {

enum class CausalEventType : std::uint8_t {
  kOrigin,     // an update was created at a site; opens its trace
  kSpanBegin,  // a synchronization hop (session or retry attempt) opened
  kSpanEnd,    // ...closed; bits = total session bits, ok = clean finish
  kWireSend,   // a message entered the link (sender hand-off)
  kWireRecv,   // the link delivered it (before any fault injector verdict)
  kFault,      // the fault injector dropped/duplicated/reordered/corrupted it
  kApply,      // receiver wrote a new vector element (counts toward |Δ|)
  kDeliver,    // the update became known at site `dst` (carried by `span`)
  kConverge,   // the update stopped diverging across all current replicas
};

std::string_view to_string(CausalEventType t);

struct CausalEvent {
  double at{0};
  CausalEventType type{CausalEventType::kOrigin};
  std::uint64_t trace{0};   // trace id (origin/deliver/converge), else 0
  std::uint64_t span{0};    // span id (span/wire/fault/apply/deliver), else 0
  std::uint64_t parent{0};  // kSpanBegin: enclosing span (0 = root)
  ObjectId obj{};           // origin/deliver/converge: the replicated object
  SiteId site{};            // update origin site, or wire element site
  std::uint64_t seq{0};     // update seq, or wire element value
  SiteId src{};             // kSpanBegin/kDeliver: sending site
  SiteId dst{};             // kSpanBegin/kDeliver: receiving site
  std::uint32_t attempt{0}; // kSpanBegin: retry attempt index (0 = first)
  std::uint64_t bits{0};    // wire events: model bits; kSpanEnd: session bits
  bool forward{true};       // wire/fault events: sender→receiver direction
  bool ok{true};            // kSpanEnd: receiver reached clean quiescence
  FlightFault fault{FlightFault::kNone};  // kFault: what the injector did
};

class CausalTracer {
 public:
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 18;

  explicit CausalTracer(std::uint64_t run_seed,
                        std::size_t capacity = kDefaultCapacity)
      : seed_(run_seed), buf_(capacity) {
    OPTREP_CHECK_MSG(capacity > 0, "causal tracer capacity must be positive");
  }

  std::uint64_t run_seed() const { return seed_; }

  // Trace identity: a SplitMix64-style mix of the run seed and the update's
  // (object, site, seq) triple. Never 0 (0 means "no trace"). Deterministic
  // per run — two runs of the same seed produce byte-identical dumps, and a
  // sweep's per-run seeds come from rt::task_seed, so dumps are identical
  // for any --threads.
  std::uint64_t trace_id(ObjectId obj, SiteId site, std::uint64_t seq) const {
    std::uint64_t x = seed_;
    x ^= (std::uint64_t{obj.value} << 32) | std::uint64_t{site.value};
    x += 0x9E3779B97F4A7C15ULL;
    x ^= seq * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x == 0 ? 1 : x;
  }

  // Ring write; never allocates, overwrites the oldest event when full and
  // advances dropped() so truncation is visible in dumps.
  void record(const CausalEvent& e) {
    ++total_;
    if (size_ < buf_.size()) {
      buf_[(head_ + size_) % buf_.size()] = e;
      ++size_;
    } else {
      buf_[head_] = e;
      head_ = (head_ + 1) % buf_.size();
      ++dropped_;
    }
  }

  // --- typed emitters -----------------------------------------------------

  void origin(double at, ObjectId obj, SiteId site, std::uint64_t seq) {
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kOrigin;
    e.trace = trace_id(obj, site, seq);
    e.obj = obj;
    e.site = site;
    e.seq = seq;
    record(e);
  }

  // Opens a hop span and returns its id. `parent` is 0 for root spans;
  // retry attempts pass the recovery root. src/dst label the replica sites
  // when the caller knows them (0 otherwise).
  std::uint64_t begin_span(double at, std::uint64_t parent, SiteId src,
                           SiteId dst, std::uint32_t attempt) {
    const std::uint64_t id = ++last_span_;
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kSpanBegin;
    e.span = id;
    e.parent = parent;
    e.src = src;
    e.dst = dst;
    e.attempt = attempt;
    record(e);
    return id;
  }

  void end_span(double at, std::uint64_t span, std::uint64_t bits, bool ok) {
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kSpanEnd;
    e.span = span;
    e.bits = bits;
    e.ok = ok;
    record(e);
  }

  void wire(double at, bool recv, std::uint64_t span, bool forward,
            SiteId site, std::uint64_t value, std::uint64_t bits) {
    CausalEvent e;
    e.at = at;
    e.type = recv ? CausalEventType::kWireRecv : CausalEventType::kWireSend;
    e.span = span;
    e.site = site;
    e.seq = value;
    e.bits = bits;
    e.forward = forward;
    record(e);
  }

  void fault(double at, std::uint64_t span, bool forward, FlightFault f,
             SiteId site, std::uint64_t value) {
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kFault;
    e.span = span;
    e.site = site;
    e.seq = value;
    e.forward = forward;
    e.fault = f;
    record(e);
  }

  void apply(double at, std::uint64_t span, SiteId site, std::uint64_t value) {
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kApply;
    e.span = span;
    e.site = site;
    e.seq = value;
    record(e);
  }

  void deliver(double at, ObjectId obj, SiteId origin_site, std::uint64_t seq,
               std::uint64_t span, SiteId src, SiteId dst) {
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kDeliver;
    e.trace = trace_id(obj, origin_site, seq);
    e.span = span;
    e.obj = obj;
    e.site = origin_site;
    e.seq = seq;
    e.src = src;
    e.dst = dst;
    record(e);
  }

  void converge(double at, ObjectId obj, SiteId origin_site, std::uint64_t seq) {
    CausalEvent e;
    e.at = at;
    e.type = CausalEventType::kConverge;
    e.trace = trace_id(obj, origin_site, seq);
    e.obj = obj;
    e.site = origin_site;
    e.seq = seq;
    record(e);
  }

  // --- ring access --------------------------------------------------------

  std::size_t capacity() const { return buf_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t total_recorded() const { return total_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t spans_opened() const { return last_span_; }

  // i-th oldest retained event, i ∈ [0, size()).
  const CausalEvent& event(std::size_t i) const {
    OPTREP_DCHECK(i < size_);
    return buf_[(head_ + i) % buf_.size()];
  }

  // Fold a per-session scratch tracer (repl::StateSystem::run_batch computes
  // sessions in parallel, each tracing into its own small ring) into this
  // tracer: scratch span ids are sequential from 1, so rebase every span and
  // parent reference by this tracer's spans_opened() and advance the span
  // counter past the absorbed ids. Callers absorb scratches in spec order, so
  // the merged stream — ids and all — is byte-identical for any thread count.
  // A scratch ring must be sized for its whole session: absorbing a ring that
  // wrapped would silently drop the session's oldest events, so that is an
  // error, not a truncation.
  void absorb(const CausalTracer& scratch) {
    OPTREP_CHECK_MSG(scratch.dropped() == 0,
                     "absorb: scratch causal ring wrapped; size it for the session");
    const std::uint64_t offset = last_span_;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      CausalEvent e = scratch.event(i);
      if (e.span != 0) e.span += offset;
      if (e.parent != 0) e.parent += offset;
      record(e);
    }
    last_span_ += scratch.spans_opened();
  }

  void clear() {
    head_ = size_ = 0;
    total_ = dropped_ = 0;
    last_span_ = 0;
  }

 private:
  std::uint64_t seed_;
  std::vector<CausalEvent> buf_;  // sized once; never reallocated
  std::size_t head_{0};
  std::size_t size_{0};
  std::uint64_t total_{0};
  std::uint64_t dropped_{0};
  std::uint64_t last_span_{0};
};

// One optrep.causal/v1 document for a single run: header plus one event per
// line, oldest first. Byte-deterministic for a given event sequence.
std::string causal_to_json(const CausalTracer& t);

// One element of a sweep document's "runs" array: {"run":k,...,"events":[...]}.
// Workers serialize their own run's fragment; the sweep document is assembled
// post-join in config order so bytes are thread-count-independent.
std::string causal_run_fragment(const CausalTracer& t, std::uint64_t run_index);

// Assemble the multi-run optrep.causal/v1 document from per-run fragments
// (already in config order).
std::string causal_sweep_json(const std::vector<std::string>& fragments);

// Chrome-trace/Perfetto export with flow events: per completed span a sender
// slice and a receiver slice joined by a flow (id = span), and per trace a
// flow from the origin instant through every delivery to convergence
// (id = trace). Complements the profiler exporter in obs/prof.h.
std::string causal_to_perfetto_json(const CausalTracer& t);

}  // namespace optrep::obs
