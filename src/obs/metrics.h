// Lightweight metrics: named counters, gauges, and log-scale histograms.
//
// A Registry owns its instruments; registration (`counter("x")`) is a map
// lookup that allocates at most once, on first use. The returned references
// are stable for the registry's lifetime, so hot paths register once and then
// increment through the reference — Counter::inc, Gauge::set and
// Histogram::record perform no heap allocation (fixed arrays and integer
// arithmetic only), which keeps per-protocol-message accounting free of
// allocator traffic.
//
// Iteration over a registry is in lexicographic name order, so exported
// snapshots are deterministic (see obs/export.h).
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/check.h"

namespace optrep::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { v_ += n; }
  // For mirroring an externally-accumulated total into the registry.
  void set(std::uint64_t v) { v_ = v; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }
  // Fold another counter in (shard merge): totals add.
  void merge_from(const Counter& o) { v_ += o.v_; }

 private:
  std::uint64_t v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) {
    v_ = v;
    if (v > max_) max_ = v;
  }
  void add(std::int64_t d) { set(v_ + d); }
  std::int64_t value() const { return v_; }
  std::int64_t max() const { return max_; }
  // Fold another gauge in (shard merge): levels add (a gauge shard holds its
  // worker's contribution to a shared level), high-water marks take the max.
  void merge_from(const Gauge& o) {
    v_ += o.v_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  std::int64_t v_{0};
  std::int64_t max_{0};  // high-water mark since construction
};

// Log-scale histogram of non-negative integers (HdrHistogram-style): values
// below 2^(kSubBits+1) are counted exactly; above that, each power-of-two
// octave is split into 2^kSubBits sub-buckets, bounding the relative
// quantization error of percentile queries by 2^-kSubBits (12.5%).
class Histogram {
 public:
  static constexpr unsigned kSubBits = 3;
  static constexpr unsigned kSub = 1u << kSubBits;

  void record(std::uint64_t v) {
    ++buckets_[bucket_index(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0;
  }

  // Value at quantile q ∈ [0,1]: the midpoint of the bucket holding the
  // ⌈q·count⌉-th smallest recorded value, clamped into [min, max] so that
  // percentile(0) == min and percentile(1) == max exactly.
  std::uint64_t percentile(double q) const;

  // Fold another histogram in (shard merge): bucket-wise addition, which is
  // exact — merging shards then querying equals recording every value into
  // one histogram.
  void merge_from(const Histogram& o) {
    if (o.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
  }

  struct Snapshot {
    std::uint64_t count{0};
    std::uint64_t sum{0};
    std::uint64_t min{0};
    std::uint64_t max{0};
    std::uint64_t p50{0};
    std::uint64_t p90{0};
    std::uint64_t p99{0};
    std::uint64_t p999{0};
  };
  Snapshot snapshot() const;

 private:
  // Exact region: indices [0, 2^(kSubBits+1)). Octaves kSubBits+1 .. 63,
  // kSub buckets each.
  static constexpr std::size_t kBuckets = 2 * kSub + (64 - (kSubBits + 1)) * kSub;

  static std::size_t bucket_index(std::uint64_t v) {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const unsigned octave = static_cast<unsigned>(std::bit_width(v)) - 1;
    const auto sub = static_cast<std::size_t>((v >> (octave - kSubBits)) & (kSub - 1));
    return 2 * kSub + (octave - (kSubBits + 1)) * kSub + sub;
  }

  static std::uint64_t bucket_midpoint(std::size_t idx) {
    if (idx < 2 * kSub) return idx;  // exact
    const std::size_t rel = idx - 2 * kSub;
    const unsigned octave = static_cast<unsigned>(kSubBits + 1 + rel / kSub);
    const std::uint64_t sub = rel % kSub;
    const std::uint64_t lo = (std::uint64_t{1} << octave) | (sub << (octave - kSubBits));
    const std::uint64_t width = std::uint64_t{1} << (octave - kSubBits);
    return lo + width / 2;
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_{0};
  std::uint64_t sum_{0};
  std::uint64_t min_{0};
  std::uint64_t max_{0};
};

class Registry {
 public:
  Counter& counter(std::string_view name) { return get(counters_, name); }
  Gauge& gauge(std::string_view name) { return get(gauges_, name); }
  Histogram& histogram(std::string_view name) { return get(histograms_, name); }

  // Sorted (by name) read access for exporters; never creates instruments.
  const std::map<std::string, Counter, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  bool empty() const { return counters_.empty() && gauges_.empty() && histograms_.empty(); }

  // Fold a shard registry into this one, creating instruments as needed.
  // Commutative and associative over shards, so the merged result does not
  // depend on worker scheduling or merge order.
  void merge_from(const Registry& o) {
    for (const auto& [name, c] : o.counters_) counter(name).merge_from(c);
    for (const auto& [name, g] : o.gauges_) gauge(name).merge_from(g);
    for (const auto& [name, h] : o.histograms_) histogram(name).merge_from(h);
  }

 private:
  template <class T>
  static T& get(std::map<std::string, T, std::less<>>& m, std::string_view name) {
    auto it = m.find(name);  // heterogeneous lookup: no allocation when present
    if (it == m.end()) it = m.emplace(std::string(name), T{}).first;
    return it->second;
  }

  // std::map nodes are stable: references returned by counter()/gauge()/
  // histogram() survive later registrations.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace optrep::obs
