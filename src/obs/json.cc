#include "obs/json.h"

#include <cstdio>
#include <cstdlib>

namespace optrep::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing data after document");
    return true;
  }

 private:
  bool fail(const char* msg) {
    if (error_ != nullptr) {
      char buf[160];
      std::snprintf(buf, sizeof buf, "%s (byte %zu)", msg, pos_);
      *error_ = buf;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool consume(char c) {
    if (eof() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return fail("unrecognized literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue* out) {
    if (eof()) return fail("unexpected end of input");
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out->type = JsonValue::Type::kString;
        return parse_string(&out->string);
      case 't':
        out->type = JsonValue::Type::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->type = JsonValue::Type::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->type = JsonValue::Type::kNull;
        return literal("null");
      default: return parse_number(out);
    }
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"') return fail("expected object key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after key");
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->members.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::kArray;
    ++pos_;  // '['
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(&v)) return false;
      out->items.push_back(std::move(v));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (eof()) return fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (eof()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not emitted
          // by our writers; a lone surrogate encodes as-is).
          if (cp < 0x80) {
            *out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            *out += static_cast<char>(0xC0 | (cp >> 6));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (cp >> 12));
            *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: return fail("unknown escape");
      }
    }
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool digits = false;
    while (!eof()) {
      const char c = peek();
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '-' ||
          c == '+') {
        digits = digits || (c >= '0' && c <= '9');
        ++pos_;
      } else {
        break;
      }
    }
    if (!digits) return fail("expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out->type = JsonValue::Type::kNumber;
    out->number = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') return fail("malformed number");
    return true;
  }

  std::string_view text_;
  std::size_t pos_{0};
  std::string* error_;
};

void flatten_into(const JsonValue& v, const std::string& path, FlatDoc* out) {
  switch (v.type) {
    case JsonValue::Type::kNull: break;
    case JsonValue::Type::kBool: out->numbers[path] = v.boolean ? 1.0 : 0.0; break;
    case JsonValue::Type::kNumber: out->numbers[path] = v.number; break;
    case JsonValue::Type::kString: out->strings[path] = v.string; break;
    case JsonValue::Type::kArray:
      for (std::size_t i = 0; i < v.items.size(); ++i) {
        flatten_into(v.items[i], path + "[" + std::to_string(i) + "]", out);
      }
      break;
    case JsonValue::Type::kObject:
      for (const auto& [k, child] : v.members) {
        flatten_into(child, path.empty() ? k : path + "." + k, out);
      }
      break;
  }
}

}  // namespace

bool json_parse(std::string_view text, JsonValue* out, std::string* error) {
  *out = JsonValue{};
  Parser p(text, error);
  return p.parse(out);
}

FlatDoc json_flatten(const JsonValue& root) {
  FlatDoc out;
  flatten_into(root, "", &out);
  return out;
}

}  // namespace optrep::obs
