#include "obs/timeline.h"

#include "obs/export.h"

namespace optrep::obs {

std::string timeline_to_json(const Timeline& t) {
  // Assembled by hand like trace_to_json: one series per line keeps the
  // document greppable while staying a single valid JSON value.
  JsonWriter hdr;
  hdr.begin_object();
  hdr.field("schema", "optrep.timeline/v1");
  hdr.field("axis", t.axis());
  hdr.field("samples", static_cast<std::uint64_t>(t.samples()));
  hdr.field("dropped_samples", t.dropped_samples());
  hdr.field("dropped_series", t.dropped_series());
  hdr.key("x").begin_array();
  for (const double x : t.xs()) hdr.value(x);
  hdr.end_array();
  std::string out = hdr.take();  // deliberately unterminated: series follow
  out += ",\"series\":[";
  bool first = true;
  for (const auto& [name, idx] : t.sorted_index()) {
    (void)name;
    const Timeline::Series& s = t.all_series()[idx];
    out += first ? "\n" : ",\n";
    first = false;
    JsonWriter w;
    w.begin_object();
    w.field("name", s.name);
    w.field("start", static_cast<std::uint64_t>(s.start));
    w.field("first", s.values.front());
    w.key("deltas").begin_array();
    for (std::size_t i = 1; i < s.values.size(); ++i) {
      w.value(s.values[i] - s.values[i - 1]);
    }
    w.end_array();
    w.end_object();
    out += w.str();
  }
  out += "\n]}\n";
  return out;
}

}  // namespace optrep::obs
